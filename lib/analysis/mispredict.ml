type site_kind = Loop_latch | While_guard | If_branch

type site = {
  pc : int;
  kind : site_kind;
  executions : int;
  exits : int;
  backward : bool;
}

let sites ~shapes ~entry =
  let found = ref [] in
  let add site = found := site :: !found in
  let rec walk visiting mult shape =
    match shape with
    | Isa.Ast.SBlock _ -> ()
    | Isa.Ast.SSeq subs -> List.iter (walk visiting mult) subs
    | Isa.Ast.SIf { branch = (pc, _); then_; jump = _; else_ } ->
      add { pc; kind = If_branch; executions = mult; exits = 0; backward = false };
      walk visiting mult then_;
      walk visiting mult else_
    | Isa.Ast.SLoop { count; init = _; body; latch } ->
      (match List.rev latch with
       | (pc, Isa.Instr.Br _) :: _ ->
         add { pc; kind = Loop_latch; executions = mult * count;
               exits = mult; backward = true }
       | _ -> ());
      walk visiting (mult * count) body
    | Isa.Ast.SWhile { bound; guard = (pc, _); body; back = _ } ->
      add { pc; kind = While_guard; executions = mult * (bound + 1);
            exits = mult; backward = false };
      walk visiting (mult * bound) body
    | Isa.Ast.SCall { site = _; callee } ->
      if List.mem callee visiting then
        raise (Wcet.Unsupported (Printf.sprintf "recursive call to %S" callee));
      (match List.assoc_opt callee shapes with
       | None -> raise (Wcet.Unsupported (Printf.sprintf "unknown callee %S" callee))
       | Some callee_shape -> walk (callee :: visiting) mult callee_shape)
  in
  (match List.assoc_opt entry shapes with
   | None -> raise (Wcet.Unsupported (Printf.sprintf "unknown entry %S" entry))
   | Some shape -> walk [ entry ] 1 shape);
  List.rev !found

let predicted_taken scheme site =
  match scheme with
  | Branchpred.Predictor.Always_taken -> true
  | Branchpred.Predictor.Always_not_taken -> false
  | Branchpred.Predictor.Btfn -> site.backward
  | Branchpred.Predictor.Per_branch dirs ->
    (match List.assoc_opt site.pc dirs with Some d -> d | None -> false)

let site_bound scheme site =
  let taken = predicted_taken scheme site in
  match site.kind with
  | Loop_latch ->
    (* Taken on every iteration except the exit. *)
    if taken then site.exits else site.executions - site.exits
  | While_guard ->
    (* The guard branch exits the loop: taken only at the exit. *)
    if taken then site.executions - site.exits else site.exits
  | If_branch ->
    (* Outcome is data-dependent: a sound static bound must assume the
       worst outcome on every execution. *)
    site.executions

let static_bound scheme sites_list =
  Prelude.Listx.sum (List.map (site_bound scheme) sites_list)

let dynamic_bound sites_list =
  Prelude.Listx.sum (List.map (fun s -> s.executions) sites_list)

let observed predictor program outcome =
  let events = Pipeline.Trace_util.branch_events program outcome in
  let mispredictions, _ = Branchpred.Predictor.run predictor events in
  mispredictions
