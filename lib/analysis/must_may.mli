(** Abstract interpretation of LRU caches (Ferdinand-style must/may
    analysis).

    The must cache maps blocks to an upper bound on their LRU age: a bound
    below the associativity guarantees a hit. The may cache maps blocks to a
    lower bound on their age; absence from the may cache guarantees a miss.
    These abstract states are the LB/UB machinery of Figure 1: they are sound
    but incomplete, hence the abstraction-induced margins the figure shows
    around BCET and WCET. *)

type t

val unknown : Cache.Set_assoc.config -> t
(** Completely unknown initial cache state (must empty, may saturated): the
    usual starting point when nothing is known about [Q].
    @raise Invalid_argument on a non-LRU configuration. *)

val cold : Cache.Set_assoc.config -> t
(** Known-empty initial cache (must empty, may empty): models a cache after
    invalidation; allows always-miss classification. *)

type classification = Always_hit | Always_miss | Unclassified

val classification_name : classification -> string

val classify : t -> int -> classification
(** Classify an access by address against the current abstract state. *)

val access : t -> int -> t
(** Abstract transformer for an access to a statically known address. *)

val access_unknown : t -> t
(** Transformer for an access whose address is statically unknown (typical
    for heap data): it may fall in any set, so every must-age increases —
    the precision catastrophe that motivates split caches. *)

val join : t -> t -> t
(** Control-flow join (path merge). *)

val restrict : t -> max_tracked:int -> t
(** Forget must-information beyond the [max_tracked] youngest blocks per
    set — a model of an analysis whose abstract domain has bounded size
    (the paper's refinement "only consider analyses within a certain
    complexity class"). Sound: dropping guarantees can only lose precision.
    May-information is left intact (dropping possible contents would be
    unsound for always-miss classification).
    @raise Invalid_argument if [max_tracked < 0]. *)

val equal : t -> t -> bool
val config : t -> Cache.Set_assoc.config

val must_resident_blocks : t -> int list
(** Blocks guaranteed to be cached (for locking/occupancy statistics). *)
