module Block_map = Map.Make (Int)

type t = {
  config : Cache.Set_assoc.config;
  (* block -> upper bound on LRU age (presence implies guaranteed cached) *)
  must : int Block_map.t;
  (* block -> lower bound on LRU age; None when any block may be anywhere *)
  may : int Block_map.t option;
}

let check_config (config : Cache.Set_assoc.config) =
  match config.kind with
  | Cache.Policy.Lru -> ()
  | Cache.Policy.Fifo | Cache.Policy.Plru | Cache.Policy.Mru
  | Cache.Policy.Round_robin ->
    invalid_arg "Must_may: analysis supports LRU only"

let unknown config = check_config config; { config; must = Block_map.empty; may = None }
let cold config = check_config config; { config; must = Block_map.empty; may = Some Block_map.empty }

type classification = Always_hit | Always_miss | Unclassified

let classification_name = function
  | Always_hit -> "AH"
  | Always_miss -> "AM"
  | Unclassified -> "NC"

let block_of t addr = Cache.Set_assoc.block_of_addr t.config addr
let set_of_block t block = block mod t.config.Cache.Set_assoc.sets
let same_set t b b' = set_of_block t b = set_of_block t b'

let classify t addr =
  let b = block_of t addr in
  if Block_map.mem b t.must then Always_hit
  else
    match t.may with
    | None -> Unclassified
    | Some may -> if Block_map.mem b may then Unclassified else Always_miss

let access t addr =
  let b = block_of t addr in
  let ways = t.config.Cache.Set_assoc.ways in
  let old_must_age =
    match Block_map.find_opt b t.must with Some age -> age | None -> ways
  in
  let age_must blk age =
    if blk = b || not (same_set t blk b) then Some age
    else if age < old_must_age then
      (if age + 1 >= ways then None else Some (age + 1))
    else Some age
  in
  let must =
    Block_map.add b 0
      (Block_map.filter_map age_must (Block_map.remove b t.must))
  in
  let may =
    match t.may with
    | None -> None
    | Some may ->
      let old_may_age =
        match Block_map.find_opt b may with Some age -> age | None -> ways
      in
      let age_may blk age =
        if blk = b || not (same_set t blk b) then Some age
        else if age <= old_may_age then
          (if age + 1 >= ways then None else Some (age + 1))
        else Some age
      in
      Some (Block_map.add b 0 (Block_map.filter_map age_may (Block_map.remove b may)))
  in
  { t with must; may }

let access_unknown t =
  let ways = t.config.Cache.Set_assoc.ways in
  let age blk age =
    ignore blk;
    if age + 1 >= ways then None else Some (age + 1)
  in
  (* Must: the access may alias any set, so everything ages. May: the unknown
     block cannot evict guarantees of absence for tracked blocks beyond the
     same aging, but it can only *add* contents; tracked lower bounds are
     unaffected (ages can only grow, which keeps lower bounds sound). *)
  { t with must = Block_map.filter_map age t.must }

let join a b =
  assert (a.config = b.config);
  let must =
    Block_map.merge
      (fun _blk x y ->
         match x, y with
         | Some xa, Some ya -> Some (Stdlib.max xa ya)
         | Some _, None | None, Some _ | None, None -> None)
      a.must b.must
  in
  let may =
    match a.may, b.may with
    | None, _ | _, None -> None
    | Some ma, Some mb ->
      Some
        (Block_map.merge
           (fun _blk x y ->
              match x, y with
              | Some xa, Some ya -> Some (Stdlib.min xa ya)
              | Some xa, None -> Some xa
              | None, Some ya -> Some ya
              | None, None -> None)
           ma mb)
  in
  { a with must; may }

let restrict t ~max_tracked =
  if max_tracked < 0 then invalid_arg "Must_may.restrict: negative budget";
  (* Per set, keep the [max_tracked] entries with the smallest age bound. *)
  let by_set = Hashtbl.create 8 in
  Block_map.iter
    (fun blk age ->
       let set = set_of_block t blk in
       let existing =
         match Hashtbl.find_opt by_set set with Some l -> l | None -> []
       in
       Hashtbl.replace by_set set ((blk, age) :: existing))
    t.must;
  let kept = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _set entries ->
       let sorted =
         List.sort (fun (_, a) (_, b) -> Stdlib.compare a b) entries
       in
       List.iter (fun (blk, age) -> Hashtbl.replace kept blk age)
         (Prelude.Listx.take max_tracked sorted))
    by_set;
  let must =
    Block_map.filter_map
      (fun blk _age -> Hashtbl.find_opt kept blk)
      t.must
  in
  { t with must }

let equal a b =
  a.config = b.config
  && Block_map.equal Int.equal a.must b.must
  && (match a.may, b.may with
      | None, None -> true
      | Some ma, Some mb -> Block_map.equal Int.equal ma mb
      | None, Some _ | Some _, None -> false)

let config t = t.config

let must_resident_blocks t = List.map fst (Block_map.bindings t.must)
