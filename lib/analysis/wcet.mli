(** Structural WCET/BCET bound computation over structured programs.

    This is the sound-but-incomplete analysis of Figure 1: it produces the
    upper bound UB >= WCET and the lower bound LB <= BCET. Costs mirror the
    {!Pipeline.Inorder} timing model instruction for instruction, with
    abstract cache states (from {!Must_may}) replacing concrete ones and
    worst-/best-case assumptions replacing unknown operands, branch outcomes
    and iteration counts.

    The [unroll] flag enables loop context sensitivity (virtual unrolling of
    the first iteration), the classic precision lever for first-miss
    behaviour: cold-cache misses are then charged once instead of on every
    iteration. *)

type icache_model =
  | Flat_fetch of int
  | Cached_fetch of { config : Cache.Set_assoc.config; hit : int; miss : int }
  | Spm_fetch of { spm : Cache.Scratchpad.t; hit : int; backing : int }

type dmem_model =
  | Flat_data of int
  | Range_data of { best : int; worst : int }
      (** data addresses are not tracked; charge [worst] in upper bounds and
          [best] in lower bounds *)

type config = {
  icache : icache_model;
  dmem : dmem_model;
  unroll : bool;
  budget : int option;
      (** abstract-domain size budget: when [Some k], the must cache tracks
          at most [k] blocks per set — the paper's "analyses within a
          certain complexity class" refinement. [None] = unrestricted. *)
}

type bound_kind = Upper | Lower

type observation = {
  pc : int;
  classification : Must_may.classification;
}

type result = {
  bound : int;
  observations : observation list;
      (** fetch classification at every analysed access context *)
}

exception Unsupported of string
(** Raised on recursive calls (the structural analysis requires an acyclic
    call graph). *)

val bound :
  ?site_filter:(int -> bool) ->
  config -> bound_kind -> shapes:(string * Isa.Ast.shape) list ->
  entry:string -> result
(** [site_filter] (default: accept everything) restricts which program
    points contribute cost: a pc outside the filter is charged 0 cycles,
    but its abstract cache effects and fetch observations still happen.
    With a filter selecting exactly the sites whose cost or execution
    count can vary (see {!Certify}), [UB - LB] of the filtered walks is a
    sound bound on the spread of whole-program execution times — the
    invariant remainder contributes identically to every run. *)

val bracket :
  ?jobs:int -> ?engine:[ `Exact | `Fast ] -> ?site_filter:(int -> bool) ->
  upper:config -> lower:config ->
  shapes:(string * Isa.Ast.shape) list -> entry:string -> unit ->
  result * result
(** [(upper_result, lower_result)]: the UB and LB walks evaluated
    concurrently on the {!Prelude.Parallel} pool (they are independent).
    Identical to two sequential {!bound} calls for any job count. Under
    [`Fast] (default [`Exact]) both walks run inline on the calling domain
    — the right choice when each walk is far cheaper than a pool spawn —
    with bit-identical results. *)

val classified_fraction : result -> float option
(** Fraction of fetch observations classified AH or AM, or [None] when
    the walk produced no fetch observations at all (e.g. a [Flat_fetch]
    configuration) — previously conflated with "everything classified"
    by returning [1.0]. *)
