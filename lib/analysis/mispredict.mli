(** Static misprediction bounds (Bodin-Puaut / Burguière-Rochange, Table 1,
    row 1).

    For static prediction schemes the structural walk yields a {e guaranteed}
    bound on mispredictions: loop latches and while guards have known worst
    outcome patterns, and data-dependent if-branches can at worst mispredict
    on every execution. For dynamic schemes a sound bound must assume the
    predictor table can always be in the worst state, which is exactly the
    analysis-complexity argument for static schemes. *)

type site_kind = Loop_latch | While_guard | If_branch

type site = {
  pc : int;
  kind : site_kind;
  executions : int;  (** worst-case execution count of the branch *)
  exits : int;       (** executions taking the loop-exit outcome *)
  backward : bool;
}

val sites :
  shapes:(string * Isa.Ast.shape) list -> entry:string -> site list
(** Branch sites with structural execution counts.
    @raise Wcet.Unsupported on recursion or unknown callees. *)

val static_bound : Branchpred.Predictor.static_scheme -> site list -> int
(** Guaranteed upper bound on mispredictions under the given static scheme. *)

val dynamic_bound : site list -> int
(** Sound bound for any table-based dynamic scheme with unknown initial
    state: every branch execution may mispredict. *)

val observed :
  Branchpred.Predictor.t -> Isa.Program.t -> Isa.Exec.outcome -> int
(** Actual misprediction count of one execution under the given predictor. *)
