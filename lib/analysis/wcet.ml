type icache_model =
  | Flat_fetch of int
  | Cached_fetch of { config : Cache.Set_assoc.config; hit : int; miss : int }
  | Spm_fetch of { spm : Cache.Scratchpad.t; hit : int; backing : int }

type dmem_model =
  | Flat_data of int
  | Range_data of { best : int; worst : int }

type config = {
  icache : icache_model;
  dmem : dmem_model;
  unroll : bool;
  budget : int option;
}

type bound_kind = Upper | Lower

type observation = {
  pc : int;
  classification : Must_may.classification;
}

type result = {
  bound : int;
  observations : observation list;
}

exception Unsupported of string

(* The abstract machine state threaded through the structural walk. *)
type walk_state = {
  cache : Must_may.t option;
  obs : observation list;  (* reversed *)
}

let instr_addr pc = pc * 4

let state_join a b =
  let cache =
    match a.cache, b.cache with
    | Some ca, Some cb -> Some (Must_may.join ca cb)
    | None, None -> None
    | Some _, None | None, Some _ -> assert false
  in
  (* [b] is always the later-walked state, so its observation list is the
     superset. *)
  { cache; obs = b.obs }

let state_equal a b =
  match a.cache, b.cache with
  | Some ca, Some cb -> Must_may.equal ca cb
  | None, None -> true
  | Some _, None | None, Some _ -> false

let bound ?(site_filter = fun _ -> true) config kind ~shapes ~entry =
  let fetch_cost st pc =
    match config.icache with
    | Flat_fetch lat -> (lat, st)
    | Spm_fetch { spm; hit; backing } ->
      ((if Cache.Scratchpad.contains spm (instr_addr pc) then hit else backing), st)
    | Cached_fetch { config = _; hit; miss } ->
      (match st.cache with
       | None -> assert false
       | Some cache ->
         let classification = Must_may.classify cache (instr_addr pc) in
         let cache = Must_may.access cache (instr_addr pc) in
         let cache =
           match config.budget with
           | Some max_tracked -> Must_may.restrict cache ~max_tracked
           | None -> cache
         in
         let cost =
           match kind, classification with
           | Upper, Must_may.Always_hit -> hit
           | Upper, (Must_may.Always_miss | Must_may.Unclassified) -> miss
           | Lower, Must_may.Always_miss -> miss
           | Lower, (Must_may.Always_hit | Must_may.Unclassified) -> hit
         in
         (cost,
          { cache = Some cache; obs = { pc; classification } :: st.obs }))
  in
  let data_cost ins =
    if not (Isa.Instr.is_memory ins) then 0
    else
      match config.dmem, kind with
      | Flat_data lat, _ -> lat
      | Range_data { worst; _ }, Upper -> worst
      | Range_data { best; _ }, Lower -> best
  in
  let exec_cost ins =
    match kind with
    | Upper -> Pipeline.Latency.base_worst ins
    | Lower -> Pipeline.Latency.base_best ins
  in
  let branch_cost ins =
    match ins, kind with
    | Isa.Instr.Br _, Upper -> Pipeline.Latency.branch_mispredict_penalty
    | Isa.Instr.Br _, Lower -> 0
    | _, _ -> 0
  in
  let instr_cost st (pc, ins) =
    let fetch, st = fetch_cost st pc in
    (* Sites outside the filter contribute no cost, but their cache-state
       effects (and observations) still happen: the certifier bounds the
       spread of the filtered sites against the true abstract cache
       evolution, not against a cache that magically skips them. *)
    let cost =
      if site_filter pc then
        fetch + exec_cost ins + data_cost ins + branch_cost ins
      else 0
    in
    (cost, st)
  in
  let block_cost st pairs =
    List.fold_left
      (fun (cost, st) pair ->
         let c, st = instr_cost st pair in
         (cost + c, st))
      (0, st) pairs
  in
  let pick a b = match kind with Upper -> Stdlib.max a b | Lower -> Stdlib.min a b in
  let rec walk visiting st shape =
    match shape with
    | Isa.Ast.SBlock pairs -> block_cost st pairs
    | Isa.Ast.SSeq shapes ->
      List.fold_left
        (fun (cost, st) s ->
           let c, st = walk visiting st s in
           (cost + c, st))
        (0, st) shapes
    | Isa.Ast.SIf { branch; then_; jump; else_ } ->
      let branch_c, st0 = instr_cost st branch in
      let then_c, st_then = walk visiting st0 then_ in
      let jump_c, st_then = instr_cost st_then jump in
      let else_c, st_else = walk visiting { st0 with obs = st_then.obs } else_ in
      let arm = pick (then_c + jump_c) else_c in
      (branch_c + arm, state_join st_then st_else)
    | Isa.Ast.SLoop { count; init; body; latch } ->
      let init_c, st0 = block_cost st init in
      let iter st =
        let body_c, st = walk visiting st body in
        let latch_c, st = block_cost st latch in
        (body_c + latch_c, st)
      in
      let rec fix st fuel =
        if fuel = 0 then raise (Unsupported "loop fixpoint did not converge")
        else begin
          let _, st' = iter st in
          let joined = state_join st st' in
          if state_equal joined st then st else fix joined (fuel - 1)
        end
      in
      if config.unroll && count >= 1 then begin
        let first_c, st1 = iter st0 in
        if count = 1 then (init_c + first_c, st1)
        else begin
          let stfix = fix st1 1000 in
          let steady_c, st_out = iter stfix in
          (init_c + first_c + ((count - 1) * steady_c), st_out)
        end
      end
      else begin
        let stfix = fix st0 1000 in
        let steady_c, st_out = iter stfix in
        (init_c + (count * steady_c), st_out)
      end
    | Isa.Ast.SWhile { bound = iter_bound; guard; body; back } ->
      let iter st =
        let guard_c, st = instr_cost st guard in
        let body_c, st = walk visiting st body in
        let back_c, st = instr_cost st back in
        (guard_c + body_c + back_c, st)
      in
      let rec fix st fuel =
        if fuel = 0 then raise (Unsupported "while fixpoint did not converge")
        else begin
          let _, st' = iter st in
          let joined = state_join st st' in
          if state_equal joined st then st else fix joined (fuel - 1)
        end
      in
      (match kind with
       | Lower ->
         (* Zero iterations: a single failing guard evaluation. *)
         let guard_c, st_exit = instr_cost st guard in
         (guard_c, st_exit)
       | Upper ->
         let stfix = fix st 1000 in
         let steady_c, _ = iter stfix in
         let final_guard_c, st_exit = instr_cost stfix guard in
         ((iter_bound * steady_c) + final_guard_c, st_exit))
    | Isa.Ast.SCall { site; callee } ->
      if List.mem callee visiting then
        raise (Unsupported (Printf.sprintf "recursive call to %S" callee));
      let site_c, st = instr_cost st site in
      (match List.assoc_opt callee shapes with
       | None -> raise (Unsupported (Printf.sprintf "unknown callee %S" callee))
       | Some callee_shape ->
         let callee_c, st = walk (callee :: visiting) st callee_shape in
         (site_c + callee_c, st))
  in
  let initial_cache =
    match config.icache with
    | Flat_fetch _ | Spm_fetch _ -> None
    | Cached_fetch { config = cache_config; _ } ->
      Some (Must_may.unknown cache_config)
  in
  let entry_shape =
    match List.assoc_opt entry shapes with
    | Some s -> s
    | None -> raise (Unsupported (Printf.sprintf "unknown entry %S" entry))
  in
  let total, st = walk [ entry ] { cache = initial_cache; obs = [] } entry_shape in
  { bound = total; observations = List.rev st.obs }

let bracket ?jobs ?(engine = `Exact) ?site_filter ~upper ~lower ~shapes
    ~entry () =
  (* The two bound computations share nothing mutable, so run them on the
     domain pool; result order is fixed by the task list, not scheduling.
     Both walks usually finish in microseconds, so under [`Fast] they stay
     on the calling domain where the pool's spawn would dominate. *)
  match engine with
  | `Fast ->
    ( bound ?site_filter upper Upper ~shapes ~entry,
      bound ?site_filter lower Lower ~shapes ~entry )
  | `Exact ->
    (match
       Prelude.Parallel.map ?jobs
         (fun kind ->
            match kind with
            | Upper -> bound ?site_filter upper Upper ~shapes ~entry
            | Lower -> bound ?site_filter lower Lower ~shapes ~entry)
         [ Upper; Lower ]
     with
     | [ ub; lb ] -> (ub, lb)
     | _ -> assert false)

let classified_fraction result =
  match result.observations with
  | [] -> None
  | obs ->
    let classified =
      List.length
        (List.filter
           (fun o -> o.classification <> Must_may.Unclassified)
           obs)
    in
    Some (float_of_int classified /. float_of_int (List.length obs))
