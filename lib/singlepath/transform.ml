exception Unsupported of string

let max_writes = 2

let predicate_reg = Isa.Reg.r15
let predicate_scratch = Isa.Reg.r10
let then_temps = [ Isa.Reg.r10; Isa.Reg.r11 ]
let else_temps = [ Isa.Reg.r12; Isa.Reg.r13 ]

let scratch_registers =
  [ Isa.Reg.r10; Isa.Reg.r11; Isa.Reg.r12; Isa.Reg.r13; Isa.Reg.r15 ]

let is_scratch r = List.exists (Isa.Reg.equal r) scratch_registers

(* Straight-line code only: the result of recursively transforming an arm. *)
let rec flatten = function
  | Isa.Ast.Block instrs -> instrs
  | Isa.Ast.Seq nodes -> List.concat_map flatten nodes
  | Isa.Ast.If _ | Isa.Ast.Loop _ | Isa.Ast.While _ | Isa.Ast.Call _ ->
    raise (Unsupported "if-arm contains control flow after transformation")

let check_predicable instrs =
  let ok ins =
    match ins with
    | Isa.Instr.Nop | Isa.Instr.Alu _ | Isa.Instr.Alui _ | Isa.Instr.Li _
    | Isa.Instr.Mul _ | Isa.Instr.Div _ | Isa.Instr.Ld _ | Isa.Instr.Sel _ ->
      true
    | Isa.Instr.St _ | Isa.Instr.Br _ | Isa.Instr.Jmp _ | Isa.Instr.Call _
    | Isa.Instr.Ret | Isa.Instr.Halt -> false
  in
  match List.find_opt (fun ins -> not (ok ins)) instrs with
  | None -> ()
  | Some ins ->
    raise (Unsupported
             (Format.asprintf "instruction not predicable: %a" Isa.Instr.pp ins))

let written_registers instrs =
  let defs = List.concat_map Isa.Instr.defs instrs in
  (* Arms writing scratch registers would clobber the predicate or the
     rename temporaries of an enclosing conversion; rejecting them also
     rejects nested if-conversions, which this scheme does not support
     (rewrite nested ifs as sequential ifs instead). *)
  if List.exists is_scratch defs then
    raise (Unsupported "if-arm writes a scratch register (nested if?)");
  Prelude.Listx.uniq Isa.Reg.compare defs

let rename_reg mapping r =
  match List.find_opt (fun (from, _) -> Isa.Reg.equal from r) mapping with
  | Some (_, to_) -> to_
  | None -> r

let rename_instr mapping ins =
  let f = rename_reg mapping in
  match ins with
  | Isa.Instr.Nop -> Isa.Instr.Nop
  | Isa.Instr.Alu (op, rd, ra, rb) -> Isa.Instr.Alu (op, f rd, f ra, f rb)
  | Isa.Instr.Alui (op, rd, ra, imm) -> Isa.Instr.Alui (op, f rd, f ra, imm)
  | Isa.Instr.Li (rd, imm) -> Isa.Instr.Li (f rd, imm)
  | Isa.Instr.Mul (rd, ra, rb) -> Isa.Instr.Mul (f rd, f ra, f rb)
  | Isa.Instr.Div (rd, ra, rb) -> Isa.Instr.Div (f rd, f ra, f rb)
  | Isa.Instr.Ld (rd, ra, off) -> Isa.Instr.Ld (f rd, f ra, off)
  | Isa.Instr.Sel (rd, rc, ra, rb) -> Isa.Instr.Sel (f rd, f rc, f ra, f rb)
  | Isa.Instr.St _ | Isa.Instr.Br _ | Isa.Instr.Jmp _ | Isa.Instr.Call _
  | Isa.Instr.Ret | Isa.Instr.Halt ->
    raise (Unsupported "rename_instr: control or store instruction")

(* Materialise [cond] as 0/1 into the predicate register. *)
let predicate_instrs (cond : Isa.Ast.cond) =
  let open Isa.Instr in
  if is_scratch cond.ra || is_scratch cond.rb then
    raise (Unsupported "if-condition uses a scratch register");
  match cond.cmp with
  | Lt -> [ Alu (Slt, predicate_reg, cond.ra, cond.rb) ]
  | Ge ->
    [ Alu (Slt, predicate_reg, cond.ra, cond.rb);
      Alui (Xor, predicate_reg, predicate_reg, 1) ]
  | Ne ->
    [ Alu (Slt, predicate_reg, cond.ra, cond.rb);
      Alu (Slt, predicate_scratch, cond.rb, cond.ra);
      Alu (Or, predicate_reg, predicate_reg, predicate_scratch) ]
  | Eq ->
    [ Alu (Slt, predicate_reg, cond.ra, cond.rb);
      Alu (Slt, predicate_scratch, cond.rb, cond.ra);
      Alu (Or, predicate_reg, predicate_reg, predicate_scratch);
      Alui (Xor, predicate_reg, predicate_reg, 1) ]

let convert_if cond then_node else_node =
  let then_instrs = flatten then_node in
  let else_instrs = flatten else_node in
  check_predicable then_instrs;
  check_predicable else_instrs;
  let writes =
    Prelude.Listx.uniq Isa.Reg.compare
      (written_registers then_instrs @ written_registers else_instrs)
  in
  if List.length writes > max_writes then
    raise (Unsupported
             (Printf.sprintf "if writes %d registers (max %d)"
                (List.length writes) max_writes));
  let pair temps = List.combine (Prelude.Listx.take (List.length writes) temps) writes in
  let then_map = List.map (fun (t, w) -> (w, t)) (pair then_temps) in
  let else_map = List.map (fun (t, w) -> (w, t)) (pair else_temps) in
  let copies mapping =
    List.map (fun (w, t) -> Isa.Instr.Alu (Isa.Instr.Add, t, w, Isa.Ast.zero))
      mapping
  in
  let selects =
    List.map
      (fun w ->
         let t = rename_reg then_map w and e = rename_reg else_map w in
         Isa.Instr.Sel (w, predicate_reg, t, e))
      writes
  in
  Isa.Ast.Block
    (predicate_instrs cond
     @ copies then_map
     @ List.map (rename_instr then_map) then_instrs
     @ copies else_map
     @ List.map (rename_instr else_map) else_instrs
     @ selects)

let rec transform_ast node =
  match node with
  | Isa.Ast.Block _ -> node
  | Isa.Ast.Seq nodes -> Isa.Ast.Seq (List.map transform_ast nodes)
  | Isa.Ast.If (cond, then_node, else_node) ->
    convert_if cond (transform_ast then_node) (transform_ast else_node)
  | Isa.Ast.Loop { count; counter; body } ->
    Isa.Ast.Loop { count; counter; body = transform_ast body }
  | Isa.Ast.While _ ->
    raise (Unsupported "data-dependent while loop")
  | Isa.Ast.Call _ ->
    raise (Unsupported "call inside single-path fragment")

let transform (w : Isa.Workload.t) =
  let transform_func (f : Isa.Ast.func) =
    { f with Isa.Ast.body = transform_ast f.Isa.Ast.body }
  in
  { w with
    Isa.Workload.name = w.Isa.Workload.name ^ "_sp";
    funcs = List.map transform_func w.Isa.Workload.funcs }

let rec is_single_path = function
  | Isa.Ast.Block _ | Isa.Ast.Call _ -> true
  | Isa.Ast.Seq nodes -> List.for_all is_single_path nodes
  | Isa.Ast.If _ | Isa.Ast.While _ -> false
  | Isa.Ast.Loop { body; _ } -> is_single_path body
