(** The single-path paradigm (Puschner-Burns, Table 2, row 6): eliminate
    input-dependent control flow by if-conversion, so that every execution
    follows the same instruction sequence and the input-induced timing
    variability (Def. 5) collapses to none — [IIPr = 1] on machines without
    value-dependent latencies.

    Scope: if-statements whose arms are (recursively) straight-line register
    code writing at most {!max_writes} distinct non-scratch registers are
    converted into predicated [Sel] code; counted loops are kept (their trip
    count is already input-independent). Data-dependent [While] loops, calls,
    stores inside arms, and wider write sets raise {!Unsupported} — the same
    restrictions Puschner places on "temporally predictable code". *)

exception Unsupported of string

val max_writes : int
(** Maximum distinct destination registers per converted if (2). *)

val scratch_registers : Isa.Reg.t list
(** Registers reserved by the transformation ([r10]-[r13], [r15]); source
    programs must not use them. *)

val transform_ast : Isa.Ast.t -> Isa.Ast.t
(** @raise Unsupported when the program is outside the transformable
    fragment. The result contains no [If] and no [While]. *)

val transform : Isa.Workload.t -> Isa.Workload.t
(** Transform a workload's functions; the result keeps the same inputs and
    gets a ["_sp"]-suffixed name. *)

val is_single_path : Isa.Ast.t -> bool
(** No [If] or [While] anywhere in the tree. *)
