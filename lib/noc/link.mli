(** A shared interconnect link in the CoMPSoC style: processing tiles issue
    memory transactions through one arbitrated link.

    CoMPSoC's claim (Table 1, row 4): with TDM arbitration the platform is
    {e composable} — the observable timing of one application is bit-identical
    no matter what the other applications do — whereas conventional
    arbitration (FCFS/RR) only mixes applications' timings together. *)

type t

val make : policy:Arbiter.Arbitration.policy -> clients:int -> t
val policy : t -> Arbiter.Arbitration.policy

val run : t -> Arbiter.Arbitration.request list -> Arbiter.Arbitration.served list

val client_schedule : Arbiter.Arbitration.served list -> client:int -> (int * int) list
(** [(start, finish)] of each of this client's transactions, in order. *)

val client_latencies : Arbiter.Arbitration.served list -> client:int -> int list

val composable :
  t -> victim:Arbiter.Arbitration.request list ->
  co_runners_a:Arbiter.Arbitration.request list ->
  co_runners_b:Arbiter.Arbitration.request list -> bool
(** Whether the victim's transaction schedule is identical under the two
    co-runner workloads — the executable form of CoMPSoC's composability. *)
