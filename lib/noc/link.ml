type t = {
  policy : Arbiter.Arbitration.policy;
  clients : int;
}

let make ~policy ~clients = { policy; clients }
let policy t = t.policy

let run t requests = Arbiter.Arbitration.simulate t.policy ~clients:t.clients requests

let client_schedule served ~client =
  List.filter_map
    (fun s ->
       if s.Arbiter.Arbitration.request.Arbiter.Arbitration.client = client
       then Some (s.Arbiter.Arbitration.start, s.Arbiter.Arbitration.finish)
       else None)
    served

let client_latencies served ~client =
  List.filter_map
    (fun s ->
       if s.Arbiter.Arbitration.request.Arbiter.Arbitration.client = client
       then Some (Arbiter.Arbitration.latency s)
       else None)
    served

let composable t ~victim ~co_runners_a ~co_runners_b =
  let victim_client =
    match victim with
    | [] -> invalid_arg "Link.composable: empty victim workload"
    | r :: _ -> r.Arbiter.Arbitration.client
  in
  let schedule others =
    client_schedule (run t (victim @ others)) ~client:victim_client
  in
  schedule co_runners_a = schedule co_runners_b
