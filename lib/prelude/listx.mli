(** Small list utilities shared across the repository. *)

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi-1] (empty when [hi <= lo]). *)

val cartesian : 'a list -> 'b list -> ('a * 'b) list

val pairs : 'a list -> ('a * 'a) list
(** All ordered pairs (including [(x, x)]) of elements of the list. *)

val take : int -> 'a list -> 'a list
val uniq : ('a -> 'a -> int) -> 'a list -> 'a list
(** Sort and deduplicate under the given comparison. *)

val sum : int list -> int
val transpose : 'a list list -> 'a list list
(** Transpose of a rectangular list of lists. *)
