type counts = {
  evals : int;
  cells : int;
  memo_hits : int;
  memo_misses : int;
}

let zero = { evals = 0; cells = 0; memo_hits = 0; memo_misses = 0 }

let key = Domain.DLS.new_key (fun () -> ref zero)

let snapshot () = !(Domain.DLS.get key)

let add_evals n =
  let r = Domain.DLS.get key in
  r := { !r with evals = !r.evals + n }

let add_cells n =
  let r = Domain.DLS.get key in
  r := { !r with cells = !r.cells + n }

let add_memo_hits n =
  let r = Domain.DLS.get key in
  r := { !r with memo_hits = !r.memo_hits + n }

let add_memo_misses n =
  let r = Domain.DLS.get key in
  r := { !r with memo_misses = !r.memo_misses + n }

(* Monotonic on purpose: every caller subtracts two readings (experiment
   wall_s, supervisor deadlines, bench samples), and wall-clock time jumps
   under NTP adjustment — which once made a deadline fire spuriously the
   moment the clock stepped. Use [Unix.gettimeofday] only for timestamps
   meant to be compared with the outside world. *)
let now () = Mono.now ()
