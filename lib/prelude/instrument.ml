type counts = {
  evals : int;
  cells : int;
}

let zero = { evals = 0; cells = 0 }

let key = Domain.DLS.new_key (fun () -> ref zero)

let snapshot () = !(Domain.DLS.get key)

let add_evals n =
  let r = Domain.DLS.get key in
  r := { !r with evals = !r.evals + n }

let add_cells n =
  let r = Domain.DLS.get key in
  r := { !r with cells = !r.cells + n }

let now () = Unix.gettimeofday ()
