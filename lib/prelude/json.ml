type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- Emitter ----------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Shortest %.Ng rendering that parses back to exactly the same double:
   reprinting the parsed value re-runs the same deterministic search, so the
   text is a fixed point (the stability the .mli promises). %.17g always
   round-trips IEEE doubles, so the search terminates.

   Non-finite floats raise: JSON has no nan/infinity literal, and the old
   silent [null] coercion meant a long-running emitter could corrupt a
   document (a number field becoming null) without anyone noticing. *)
let float_string f =
  if not (Float.is_finite f) then
    invalid_arg
      (Printf.sprintf "Json: cannot emit non-finite float %h (JSON has no \
                       nan/infinity; encode such values explicitly)" f)
  else begin
    let rec search p =
      let s = Printf.sprintf "%.*g" p f in
      if p >= 17 || float_of_string s = f then s else search (p + 1)
    in
    let s = search 1 in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_string f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_char buf ',';
         emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_string buf (escape_string key);
         Buffer.add_char buf ':';
         emit buf value)
      fields;
    Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  emit buf json;
  Buffer.contents buf

let to_string_pretty json =
  let buf = Buffer.create 1024 in
  let pad depth = Buffer.add_string buf (String.make (2 * depth) ' ') in
  let rec pp depth = function
    | (Null | Bool _ | Int _ | Float _ | String _) as scalar ->
      emit buf scalar
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
           if i > 0 then Buffer.add_string buf ",\n";
           pad (depth + 1);
           pp (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (key, value) ->
           if i > 0 then Buffer.add_string buf ",\n";
           pad (depth + 1);
           Buffer.add_string buf (escape_string key);
           Buffer.add_string buf ": ";
           pp (depth + 1) value)
        fields;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  pp 0 json;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- Parser ------------------------------------------------------------ *)

exception Fail of int * string

let parse input =
  let n = String.length input in
  let fail pos msg = raise (Fail (pos, msg)) in
  let peek pos = if pos < n then Some input.[pos] else None in
  let rec skip_ws pos =
    match peek pos with
    | Some (' ' | '\t' | '\n' | '\r') -> skip_ws (pos + 1)
    | _ -> pos
  in
  let expect pos c =
    match peek pos with
    | Some got when got = c -> pos + 1
    | Some got -> fail pos (Printf.sprintf "expected %C, found %C" c got)
    | None -> fail pos (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal pos word value =
    let len = String.length word in
    if pos + len <= n && String.sub input pos len = word then (value, pos + len)
    else fail pos (Printf.sprintf "expected %s" word)
  in
  let hex4 pos =
    if pos + 4 > n then fail pos "truncated \\u escape";
    let digit i =
      match input.[pos + i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | c -> fail (pos + i) (Printf.sprintf "invalid hex digit %C" c)
    in
    (digit 0 lsl 12) lor (digit 1 lsl 8) lor (digit 2 lsl 4) lor digit 3
  in
  let parse_string pos =
    let pos = expect pos '"' in
    let buf = Buffer.create 16 in
    let rec loop pos =
      match peek pos with
      | None -> fail pos "unterminated string"
      | Some '"' -> (Buffer.contents buf, pos + 1)
      | Some '\\' -> (
          match peek (pos + 1) with
          | None -> fail (pos + 1) "truncated escape"
          | Some '"' -> Buffer.add_char buf '"'; loop (pos + 2)
          | Some '\\' -> Buffer.add_char buf '\\'; loop (pos + 2)
          | Some '/' -> Buffer.add_char buf '/'; loop (pos + 2)
          | Some 'b' -> Buffer.add_char buf '\b'; loop (pos + 2)
          | Some 'f' -> Buffer.add_char buf '\012'; loop (pos + 2)
          | Some 'n' -> Buffer.add_char buf '\n'; loop (pos + 2)
          | Some 'r' -> Buffer.add_char buf '\r'; loop (pos + 2)
          | Some 't' -> Buffer.add_char buf '\t'; loop (pos + 2)
          | Some 'u' ->
            let hi = hex4 (pos + 2) in
            if hi >= 0xD800 && hi <= 0xDBFF then begin
              (* High surrogate: must pair with \uDC00-\uDFFF. *)
              if not (pos + 8 < n && input.[pos + 6] = '\\'
                      && input.[pos + 7] = 'u')
              then fail (pos + 2) "unpaired high surrogate";
              let lo = hex4 (pos + 8) in
              if lo < 0xDC00 || lo > 0xDFFF then
                fail (pos + 8) "unpaired high surrogate";
              let cp =
                0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
              in
              Buffer.add_utf_8_uchar buf (Uchar.of_int cp);
              loop (pos + 12)
            end
            else if hi >= 0xDC00 && hi <= 0xDFFF then
              fail (pos + 2) "unpaired low surrogate"
            else begin
              Buffer.add_utf_8_uchar buf (Uchar.of_int hi);
              loop (pos + 6)
            end
          | Some c -> fail (pos + 1) (Printf.sprintf "invalid escape \\%c" c))
      | Some c when Char.code c < 0x20 ->
        fail pos "unescaped control character in string"
      | Some c -> Buffer.add_char buf c; loop (pos + 1)
    in
    loop pos
  in
  let parse_number pos =
    let start = pos in
    let pos = if peek pos = Some '-' then pos + 1 else pos in
    let digits p =
      let rec go p =
        match peek p with Some '0' .. '9' -> go (p + 1) | _ -> p
      in
      let p' = go p in
      if p' = p then fail p "expected digit";
      p'
    in
    let pos = digits pos in
    let pos, is_float =
      if peek pos = Some '.' then (digits (pos + 1), true) else (pos, false)
    in
    let pos, is_float =
      match peek pos with
      | Some ('e' | 'E') ->
        let p =
          match peek (pos + 1) with
          | Some ('+' | '-') -> pos + 2
          | _ -> pos + 1
        in
        (digits p, true)
      | _ -> (pos, is_float)
    in
    let text = String.sub input start (pos - start) in
    (* A grammatically valid literal can still overflow the double range
       ([1e400] parses to [infinity]); accepting it would hand callers a
       value the emitter must refuse, so the round trip parse-emit-parse
       would break. Reject it here instead. *)
    let finite_float () =
      let f = float_of_string text in
      if Float.is_finite f then Float f
      else fail start "number out of double range"
    in
    let value =
      if is_float then finite_float ()
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> finite_float ()  (* beyond native int range *)
    in
    (value, pos)
  in
  let rec parse_value pos =
    let pos = skip_ws pos in
    match peek pos with
    | None -> fail pos "expected value, found end of input"
    | Some 'n' -> literal pos "null" Null
    | Some 't' -> literal pos "true" (Bool true)
    | Some 'f' -> literal pos "false" (Bool false)
    | Some '"' ->
      let s, pos = parse_string pos in
      (String s, pos)
    | Some ('-' | '0' .. '9') -> parse_number pos
    | Some '[' ->
      let pos = skip_ws (pos + 1) in
      if peek pos = Some ']' then (List [], pos + 1)
      else
        let rec items acc pos =
          let v, pos = parse_value pos in
          let pos = skip_ws pos in
          match peek pos with
          | Some ',' -> items (v :: acc) (pos + 1)
          | Some ']' -> (List (List.rev (v :: acc)), pos + 1)
          | _ -> fail pos "expected ',' or ']' in array"
        in
        items [] pos
    | Some '{' ->
      let pos = skip_ws (pos + 1) in
      if peek pos = Some '}' then (Obj [], pos + 1)
      else
        let field pos =
          let pos = skip_ws pos in
          let key, pos = parse_string pos in
          let pos = expect (skip_ws pos) ':' in
          let v, pos = parse_value pos in
          ((key, v), pos)
        in
        let rec fields acc pos =
          let kv, pos = field pos in
          let pos = skip_ws pos in
          match peek pos with
          | Some ',' -> fields (kv :: acc) (pos + 1)
          | Some '}' -> (Obj (List.rev (kv :: acc)), pos + 1)
          | _ -> fail pos "expected ',' or '}' in object"
        in
        fields [] pos
    | Some c -> fail pos (Printf.sprintf "unexpected character %C" c)
  in
  match parse_value 0 with
  | value, pos ->
    let pos = skip_ws pos in
    if pos = n then Ok value
    else Error (Printf.sprintf "trailing content at offset %d" pos)
  | exception Fail (pos, msg) ->
    Error (Printf.sprintf "%s at offset %d" msg pos)

let parse_exn input =
  match parse input with
  | Ok v -> v
  | Error msg -> invalid_arg ("Json.parse: " ^ msg)

(* --- Accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None
let string_value = function String s -> Some s | _ -> None
let bool_value = function Bool b -> Some b | _ -> None
let int_value = function Int n -> Some n | _ -> None

let float_value = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
