type t = { n : int; d : int }

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Native-int arithmetic that refuses to wrap: composition over long kernels
   multiplies large cycle counts by large denominators, and a silently
   wrapped rational is worse than no answer. *)

let checked_add a b =
  let r = a + b in
  if (a >= 0 && b >= 0 && r < 0) || (a < 0 && b < 0 && r >= 0) then
    raise Overflow
  else r

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else if (a = -1 && b = min_int) || (b = -1 && a = min_int) then raise Overflow
  else begin
    let r = a * b in
    if r / b <> a then raise Overflow else r
  end

let checked_neg a = if a = min_int then raise Overflow else -a

let make num den =
  if den = 0 then raise Division_by_zero
  else begin
    let sign = if den < 0 then -1 else 1 in
    let num = checked_mul sign num and den = checked_mul sign den in
    (* gcd(|num|, den) computed as gcd(den, |num mod den|): the remainder's
       magnitude is < den, so nothing wraps even for num = min_int (whose
       [abs] is itself). *)
    let g = gcd den (abs (num mod den)) in
    { n = num / g; d = den / g }
  end

let of_int n = { n; d = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.n
let den t = t.d

(* a/b + c/d with g = gcd(b, d): reduce to the least common denominator
   before multiplying, so intermediates only overflow when the final lowest-
   terms result itself is unrepresentable (in which case: Overflow). *)
let add a b =
  let g = gcd a.d b.d in
  let bd_red = b.d / g and ad_red = a.d / g in
  let n = checked_add (checked_mul a.n bd_red) (checked_mul b.n ad_red) in
  make n (checked_mul a.d bd_red)

let neg a = { a with n = checked_neg a.n }
let sub a b = add a (neg b)

(* Cross-reduce (gcd of each numerator with the opposite denominator) before
   multiplying, for the same reason as [add]. *)
let mul a b =
  let g1 = gcd (abs a.n) b.d and g2 = gcd (abs b.n) a.d in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make (checked_mul (a.n / g1) (b.n / g2))
    (checked_mul (a.d / g2) (b.d / g1))

let inv a =
  if a.n = 0 then raise Division_by_zero
  else if a.n < 0 then { n = checked_neg a.d; d = checked_neg a.n }
  else { n = a.d; d = a.n }

let div a b = if b.n = 0 then raise Division_by_zero else mul a (inv b)

(* Overflow-free comparison by continued-fraction descent on floor
   divisions: compare integer parts, then recurse on the flipped fractional
   remainders. Floor division keeps remainders in [0, d), so after one step
   the descent runs over positive rationals and terminates like Euclid's
   gcd. Nothing is ever negated, so numerators of [min_int] (whose negation
   would wrap) compare exactly too. The [qa - 1] adjustment cannot wrap:
   [qa = min_int] forces [ad = 1], where the remainder is 0. *)
let floor_divmod n d =
  let q = n / d and r = n mod d in
  if r < 0 then (q - 1, r + d) else (q, r)

let rec compare_cf an ad bn bd =
  let qa, ra = floor_divmod an ad in
  let qb, rb = floor_divmod bn bd in
  if qa <> qb then Stdlib.compare qa qb
  else if ra = 0 && rb = 0 then 0
  else if ra = 0 then -1
  else if rb = 0 then 1
  else compare_cf bd rb ad ra

let compare a b = compare_cf a.n a.d b.n b.d

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( = ) = equal
let to_float a = float_of_int a.n /. float_of_int a.d

let pp ppf a =
  if Int.equal a.d 1 then Format.fprintf ppf "%d" a.n
  else Format.fprintf ppf "%d/%d" a.n a.d

let to_string a = Format.asprintf "%a" pp a
