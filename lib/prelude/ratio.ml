type t = { n : int; d : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero
  else begin
    let sign = if den < 0 then -1 else 1 in
    let num = sign * num and den = sign * den in
    let g = gcd (abs num) den in
    if g = 0 then { n = 0; d = 1 } else { n = num / g; d = den / g }
  end

let of_int n = { n; d = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.n
let den t = t.d
let add a b = make ((a.n * b.d) + (b.n * a.d)) (a.d * b.d)
let sub a b = make ((a.n * b.d) - (b.n * a.d)) (a.d * b.d)
let mul a b = make (a.n * b.n) (a.d * b.d)
let div a b = if b.n = 0 then raise Division_by_zero else make (a.n * b.d) (a.d * b.n)
let neg a = { a with n = -a.n }
let inv a = if a.n = 0 then raise Division_by_zero else make a.d a.n
let compare a b = Stdlib.compare (a.n * b.d) (b.n * a.d)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( = ) = equal
let to_float a = float_of_int a.n /. float_of_int a.d

let pp ppf a =
  if Int.equal a.d 1 then Format.fprintf ppf "%d" a.n
  else Format.fprintf ppf "%d/%d" a.n a.d

let to_string a = Format.asprintf "%a" pp a
