(* A fixed-size pool of worker domains fed from a mutex/condition-protected
   task queue. Pools are created per top-level call and joined before it
   returns: predictability experiments are batch jobs, so keeping idle
   domains alive between calls would only complicate process exit. *)

let process_default = Atomic.make 0 (* 0 = fall back to the runtime's advice *)

let recommended_jobs () = Stdlib.max 1 (Domain.recommended_domain_count ())

let set_default_jobs n =
  if n < 1 then invalid_arg "Parallel.set_default_jobs: jobs must be >= 1";
  Atomic.set process_default n

let default_jobs () =
  match Atomic.get process_default with
  | 0 -> recommended_jobs ()
  | n -> n

let resolve_jobs = function
  | None -> default_jobs ()
  | Some n when n < 1 -> invalid_arg "Parallel: jobs must be >= 1"
  | Some n -> n

(* True on pool worker domains. A task running on a worker already owns one
   slot of the width the caller asked for, so any Parallel call it makes
   runs sequentially in place instead of spawning a nested pool: live
   domains stay bounded by [jobs + 1] no matter how deeply the hot paths
   nest (run_all -> exp_atlas -> Quantify.evaluate), well clear of the
   OCaml runtime's total-domain cap, and cores are never oversubscribed. *)
let on_worker = Domain.DLS.new_key (fun () -> false)

(* --- Cooperative deadlines --------------------------------------------- *)

exception Deadline_exceeded of { elapsed_s : float; deadline_s : float }

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { elapsed_s; deadline_s } ->
      Some
        (Printf.sprintf "Parallel.Deadline_exceeded(%.3fs > %.3fs)" elapsed_s
           deadline_s)
    | _ -> None)

(* (start time, budget) of the innermost deadlined task running on this
   domain, if any. Purely cooperative: OCaml domains cannot be preempted,
   so overruns are detected at checkpoints ([check_deadline], which the
   slice loops below hit between elements) and post-hoc when a task
   returns. *)
let task_deadline = Domain.DLS.new_key (fun () -> None)

let check_deadline () =
  match Domain.DLS.get task_deadline with
  | None -> ()
  | Some (started, deadline_s) ->
    let elapsed_s = Instrument.now () -. started in
    if elapsed_s > deadline_s then
      raise (Deadline_exceeded { elapsed_s; deadline_s })

let with_deadline ~deadline_s f =
  if deadline_s <= 0. then
    invalid_arg "Parallel.with_deadline: deadline must be > 0";
  let started = Instrument.now () in
  let saved = Domain.DLS.get task_deadline in
  Domain.DLS.set task_deadline (Some (started, deadline_s));
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set task_deadline saved)
    (fun () ->
       let v = f () in
       let elapsed_s = Instrument.now () -. started in
       if elapsed_s > deadline_s then
         raise (Deadline_exceeded { elapsed_s; deadline_s });
       v)

module Pool = struct
  type t = {
    mu : Mutex.t;
    work_ready : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable closed : bool;
    mutable domains : unit Domain.t list;
    (* Instrument counts accumulated by worker domains, flushed back to the
       submitting domain on [drain] so per-experiment attribution survives
       nested parallelism. *)
    worker_evals : int Atomic.t;
    worker_cells : int Atomic.t;
    worker_memo_hits : int Atomic.t;
    worker_memo_misses : int Atomic.t;
  }

  let rec work_loop t =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work_ready t.mu
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mu (* closed and drained *)
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mu;
      task ();
      work_loop t
    end

  let worker t =
    Domain.DLS.set on_worker true;
    work_loop t;
    (* Worker domains start with zero counters and nothing on this domain
       ever resets them (Harness.timed only reads deltas), so the final
       snapshot is exactly the work this pool's tasks did here. *)
    let counts = Instrument.snapshot () in
    ignore (Atomic.fetch_and_add t.worker_evals counts.Instrument.evals);
    ignore (Atomic.fetch_and_add t.worker_cells counts.Instrument.cells);
    ignore
      (Atomic.fetch_and_add t.worker_memo_hits counts.Instrument.memo_hits);
    ignore
      (Atomic.fetch_and_add t.worker_memo_misses counts.Instrument.memo_misses)

  (* Spawn up to [size] workers. [Domain.spawn] can fail (the runtime caps
     live domains at ~128, and the "parallel.spawn" fault site simulates
     exactly that); a failure after [k] successful spawns used to leak
     those [k] domains blocked on the queue forever and poison the caller —
     now the pool simply degrades to the achieved width [k], and the
     already-spawned domains are the pool. Width 0 is a valid result; the
     callers below fall back to running inline. *)
  let create size =
    let t =
      { mu = Mutex.create (); work_ready = Condition.create ();
        queue = Queue.create (); closed = false; domains = [];
        worker_evals = Atomic.make 0; worker_cells = Atomic.make 0;
        worker_memo_hits = Atomic.make 0; worker_memo_misses = Atomic.make 0 }
    in
    (try
       for _ = 1 to size do
         Faults.point "parallel.spawn";
         t.domains <- Domain.spawn (fun () -> worker t) :: t.domains
       done
     with _ -> ());
    t

  let width t = List.length t.domains

  let submit t task =
    Mutex.lock t.mu;
    Queue.push task t.queue;
    Condition.signal t.work_ready;
    Mutex.unlock t.mu

  (* Close the queue, wait for every submitted task to finish, and credit
     the workers' instrument counts to the calling domain. *)
  let drain t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mu;
    List.iter Domain.join t.domains;
    Instrument.add_evals (Atomic.get t.worker_evals);
    Instrument.add_cells (Atomic.get t.worker_cells);
    Instrument.add_memo_hits (Atomic.get t.worker_memo_hits);
    Instrument.add_memo_misses (Atomic.get t.worker_memo_misses)
end

(* Tasks must never raise (a raising task would kill its worker domain and
   strand the queue), so failures are parked here and re-raised once the
   pool has drained. *)
type failure = { exn : exn; backtrace : Printexc.raw_backtrace }

exception Multiple_failures of { count : int; first : exn }

let () =
  Printexc.register_printer (function
    | Multiple_failures { count; first } ->
      Some
        (Printf.sprintf "Parallel.Multiple_failures(%d tasks; first: %s)"
           count (Printexc.to_string first))
    | _ -> None)

(* Execute [body i] for all [0 <= i < count]. Indices are grouped into
   contiguous slices (a few per worker, so cheap bodies don't pay a mutex
   round-trip per element while load imbalance still smooths out), and each
   slice becomes one pool task. Every failure that occurs is collected (new
   work stops being started after the first); a single failure re-raises
   transparently, several raise [Multiple_failures] carrying the count and
   the earliest-recorded exception. *)
let run_tasks ~jobs ~count body =
  if count > 0 then begin
    let sequential () =
      for i = 0 to count - 1 do
        check_deadline ();
        body i
      done
    in
    if jobs <= 1 || count = 1 || Domain.DLS.get on_worker then sequential ()
    else begin
      let slices = Stdlib.min count (jobs * 8) in
      let slice_len = (count + slices - 1) / slices in
      let pool = Pool.create (Stdlib.min jobs slices) in
      if Pool.width pool = 0 then begin
        (* Every spawn failed: degrade to the calling domain. *)
        Pool.drain pool;
        sequential ()
      end
      else begin
        let failed = Atomic.make 0 in
        let failures_mu = Mutex.create () in
        let failures = ref [] in
        let record f =
          Mutex.lock failures_mu;
          failures := f :: !failures;
          Mutex.unlock failures_mu;
          Atomic.incr failed
        in
        for s = 0 to slices - 1 do
          let lo = s * slice_len in
          let hi = Stdlib.min count (lo + slice_len) - 1 in
          if lo <= hi then
            Pool.submit pool (fun () ->
                try
                  for i = lo to hi do
                    if Atomic.get failed = 0 then body i
                  done
                with exn ->
                  record { exn; backtrace = Printexc.get_raw_backtrace () })
        done;
        Pool.drain pool;
        match List.rev !failures with
        | [] -> ()
        | [ { exn; backtrace } ] -> Printexc.raise_with_backtrace exn backtrace
        | { exn; backtrace } :: _ as all ->
          Printexc.raise_with_backtrace
            (Multiple_failures { count = List.length all; first = exn })
            backtrace
      end
    end
  end

let map_array ?jobs f xs =
  let jobs = resolve_jobs jobs in
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_tasks ~jobs ~count:n (fun i -> results.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))

(* --- Per-task isolation ------------------------------------------------- *)

type task_error = {
  index : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

(* Run one isolated task: arm the cooperative deadline for this domain,
   pass through the "parallel.task" fault site, and catch everything —
   [with_deadline] adds the post-hoc overrun check for tasks that ran past
   their budget without reaching a checkpoint. Never raises. *)
let guarded ~deadline_s f x index =
  let body () =
    Faults.point "parallel.task";
    f x
  in
  match
    match deadline_s with
    | None -> body ()
    | Some deadline_s -> with_deadline ~deadline_s body
  with
  | v -> Ok v
  | exception exn ->
    Error { index; exn; backtrace = Printexc.get_raw_backtrace () }

let map_result ?jobs ?deadline_s f xs =
  let jobs = resolve_jobs jobs in
  (match deadline_s with
   | Some d when d <= 0. -> invalid_arg "Parallel.map_result: deadline must be > 0"
   | _ -> ());
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let results = Array.make n None in
  let task i = results.(i) <- Some (guarded ~deadline_s f arr.(i) i) in
  if n > 0 then begin
    if jobs <= 1 || n = 1 || Domain.DLS.get on_worker then
      for i = 0 to n - 1 do task i done
    else begin
      let pool = Pool.create (Stdlib.min jobs n) in
      if Pool.width pool = 0 then begin
        Pool.drain pool;
        for i = 0 to n - 1 do task i done
      end
      else begin
        for i = 0 to n - 1 do
          Pool.submit pool (fun () -> task i)
        done;
        Pool.drain pool
      end
    end
  end;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) results)

let fold ?jobs ?(chunk = 16) ~map:fm ~combine ~init items =
  let chunk = Stdlib.max 1 chunk in
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let chunks = (n + chunk - 1) / chunk in
    let partial c =
      let lo = c * chunk in
      let hi = Stdlib.min n (lo + chunk) - 1 in
      let acc = ref (fm arr.(lo)) in
      for i = lo + 1 to hi do
        acc := combine !acc (fm arr.(i))
      done;
      !acc
    in
    let partials = map_array ?jobs partial (Array.init chunks Fun.id) in
    Array.fold_left combine init partials
  end
