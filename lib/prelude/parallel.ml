(* A fixed-size pool of worker domains fed from a mutex/condition-protected
   task queue. Pools are created per top-level call and joined before it
   returns: predictability experiments are batch jobs, so keeping idle
   domains alive between calls would only complicate process exit. *)

let process_default = Atomic.make 0 (* 0 = fall back to the runtime's advice *)

let recommended_jobs () = Stdlib.max 1 (Domain.recommended_domain_count ())

let set_default_jobs n =
  if n < 1 then invalid_arg "Parallel.set_default_jobs: jobs must be >= 1";
  Atomic.set process_default n

let default_jobs () =
  match Atomic.get process_default with
  | 0 -> recommended_jobs ()
  | n -> n

let resolve_jobs = function
  | None -> default_jobs ()
  | Some n when n < 1 -> invalid_arg "Parallel: jobs must be >= 1"
  | Some n -> n

(* True on pool worker domains. A task running on a worker already owns one
   slot of the width the caller asked for, so any Parallel call it makes
   runs sequentially in place instead of spawning a nested pool: live
   domains stay bounded by [jobs + 1] no matter how deeply the hot paths
   nest (run_all -> exp_atlas -> Quantify.evaluate), well clear of the
   OCaml runtime's total-domain cap, and cores are never oversubscribed. *)
let on_worker = Domain.DLS.new_key (fun () -> false)

module Pool = struct
  type t = {
    mu : Mutex.t;
    work_ready : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable closed : bool;
    mutable domains : unit Domain.t list;
    (* Instrument counts accumulated by worker domains, flushed back to the
       submitting domain on [drain] so per-experiment attribution survives
       nested parallelism. *)
    worker_evals : int Atomic.t;
    worker_cells : int Atomic.t;
  }

  let rec work_loop t =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work_ready t.mu
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mu (* closed and drained *)
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mu;
      task ();
      work_loop t
    end

  let worker t =
    Domain.DLS.set on_worker true;
    work_loop t;
    (* Worker domains start with zero counters and nothing on this domain
       ever resets them (Harness.timed only reads deltas), so the final
       snapshot is exactly the work this pool's tasks did here. *)
    let counts = Instrument.snapshot () in
    ignore (Atomic.fetch_and_add t.worker_evals counts.Instrument.evals);
    ignore (Atomic.fetch_and_add t.worker_cells counts.Instrument.cells)

  let create size =
    let t =
      { mu = Mutex.create (); work_ready = Condition.create ();
        queue = Queue.create (); closed = false; domains = [];
        worker_evals = Atomic.make 0; worker_cells = Atomic.make 0 }
    in
    t.domains <- List.init size (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let submit t task =
    Mutex.lock t.mu;
    Queue.push task t.queue;
    Condition.signal t.work_ready;
    Mutex.unlock t.mu

  (* Close the queue, wait for every submitted task to finish, and credit
     the workers' instrument counts to the calling domain. *)
  let drain t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mu;
    List.iter Domain.join t.domains;
    Instrument.add_evals (Atomic.get t.worker_evals);
    Instrument.add_cells (Atomic.get t.worker_cells)
end

(* Tasks must never raise (a raising task would kill its worker domain and
   strand the queue), so failures are parked here and re-raised with their
   original backtrace once the pool has drained. *)
type failure = { exn : exn; backtrace : Printexc.raw_backtrace }

(* Execute [body i] for all [0 <= i < count]. Indices are grouped into
   contiguous slices (a few per worker, so cheap bodies don't pay a mutex
   round-trip per element while load imbalance still smooths out), and each
   slice becomes one pool task. *)
let run_tasks ~jobs ~count body =
  if count > 0 then begin
    if jobs <= 1 || count = 1 || Domain.DLS.get on_worker then
      for i = 0 to count - 1 do body i done
    else begin
      let slices = Stdlib.min count (jobs * 8) in
      let slice_len = (count + slices - 1) / slices in
      let pool = Pool.create (Stdlib.min jobs slices) in
      let first_failure = Atomic.make None in
      for s = 0 to slices - 1 do
        let lo = s * slice_len in
        let hi = Stdlib.min count (lo + slice_len) - 1 in
        if lo <= hi then
          Pool.submit pool (fun () ->
              try
                for i = lo to hi do
                  if Atomic.get first_failure = None then body i
                done
              with exn ->
                let backtrace = Printexc.get_raw_backtrace () in
                ignore
                  (Atomic.compare_and_set first_failure None
                     (Some { exn; backtrace })))
      done;
      Pool.drain pool;
      match Atomic.get first_failure with
      | Some { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace
      | None -> ()
    end
  end

let map_array ?jobs f xs =
  let jobs = resolve_jobs jobs in
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_tasks ~jobs ~count:n (fun i -> results.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))

let fold ?jobs ?(chunk = 16) ~map:fm ~combine ~init items =
  let chunk = Stdlib.max 1 chunk in
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let chunks = (n + chunk - 1) / chunk in
    let partial c =
      let lo = c * chunk in
      let hi = Stdlib.min n (lo + chunk) - 1 in
      let acc = ref (fm arr.(lo)) in
      for i = lo + 1 to hi do
        acc := combine !acc (fm arr.(i))
      done;
      !acc
    in
    let partials = map_array ?jobs partial (Array.init chunks Fun.id) in
    Array.fold_left combine init partials
  end
