(** Aligned plain-text tables, used by the benchmark harness to print the
    rows of the paper's Tables 1 and 2 and per-experiment result series. *)

type t

val make : header:string list -> t
val add_row : t -> string list -> unit
val add_separator : t -> unit
val render : t -> string
val print : t -> unit
