type line = Row of string list | Separator

type t = {
  header : string list;
  mutable lines : line list;  (* reversed *)
}

let make ~header = { header; lines = [] }
let add_row t cells = t.lines <- Row cells :: t.lines
let add_separator t = t.lines <- Separator :: t.lines

let render t =
  let rows = List.rev t.lines in
  let all_cells =
    t.header :: List.filter_map (function Row r -> Some r | Separator -> None) rows
  in
  let columns =
    List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all_cells
  in
  let width i =
    let cell_width r = try String.length (List.nth r i) with Failure _ -> 0 in
    List.fold_left (fun acc r -> Stdlib.max acc (cell_width r)) 0 all_cells
  in
  let widths = List.init columns width in
  let render_cells cells =
    let padded =
      List.mapi
        (fun i w ->
           let cell = try List.nth cells i with Failure _ -> "" in
           cell ^ String.make (w - String.length cell) ' ')
        widths
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let body =
    List.map
      (function Row r -> render_cells r | Separator -> sep)
      rows
  in
  String.concat "\n" ((render_cells t.header :: sep :: body) @ [ "" ])

let print t = print_string (render t)
