(** Shared event counters for multi-domain servers.

    A thin veneer over [int Atomic.t] so call sites read as what they are
    (served requests, shed connections, reaped idlers) rather than as
    atomics plumbing. Every operation is lock-free and safe from any
    domain; [get] is a plain atomic load, so a snapshot assembled from
    several counters is per-counter exact but not a cross-counter
    consistent cut — fine for stats, not for invariants. *)

type t

val make : unit -> t
(** A fresh counter at 0. *)

val incr : t -> unit
val decr : t -> unit

val add : t -> int -> unit
(** Add [n] (may be negative). *)

val get : t -> int
