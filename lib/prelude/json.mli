(** Dependency-free JSON: a minimal emitter and parser over the OCaml
    stdlib, for the machine-readable report layer ([predlab --format json],
    [bench --json FILE], [predlab compare]).

    The emitter produces well-formed RFC 8259 documents: strings are escaped
    (quotes, backslashes, and all control characters below [0x20]); floats
    use a fixed, locale-independent rendering that survives a
    parse-then-reprint round trip (printing the parsed value again yields
    the same text). Non-finite floats have no JSON representation and are
    rejected ({!to_string} raises [Invalid_argument]) — the documented
    policy: silently coercing them to [null] let a long-running process
    corrupt a report without any error surfacing.

    The parser is a small recursive-descent reader accepting exactly the
    documents the emitter produces plus standard JSON interchange: numbers
    without [.]/[e]/[E] become {!Int}, all others {!Float}; [\uXXXX] escapes
    decode to UTF-8 (surrogate pairs included); grammatically valid number
    literals that overflow the double range ([1e400]) are rejected rather
    than parsed to [infinity] (which could never be re-emitted). It exists
    so the regression gate can diff two report files without a third-party
    JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.
    @raise Invalid_argument on a non-finite {!Float} anywhere in the
    document (so does {!to_string_pretty}) — see {!float_string}. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, ending in a newline — the format written
    to [BENCH_*.json] trajectory files so diffs stay reviewable. *)

val escape_string : string -> string
(** [escape_string s] is the JSON string literal for [s], including the
    surrounding quotes. *)

val float_string : float -> string
(** The emitter's float rendering (no surrounding structure): shortest of
    the fixed precisions that reprints stably; always contains a [.] or an
    exponent so it re-parses as {!Float}.
    @raise Invalid_argument on [nan]/[inf]: JSON has no literal for them,
    and emitting [null] instead silently changed a number into a
    different type. Callers with legitimately absent values should encode
    {!Null} (or a string) explicitly. *)

val parse : string -> (t, string) result
(** [Error message] positions are 0-based byte offsets into the input.
    Trailing whitespace is allowed; any other trailing content is an
    error. *)

val parse_exn : string -> t
(** @raise Invalid_argument on malformed input, with the {!parse} message. *)

(** {2 Accessors} — total (option-returning) lookups used by the
    regression gate; no exceptions. *)

val member : string -> t -> t option
(** First binding of the key in an {!Obj}; [None] on other constructors. *)

val to_list : t -> t list option
val string_value : t -> string option
val bool_value : t -> bool option
val int_value : t -> int option

val float_value : t -> float option
(** Accepts {!Int} too (JSON numbers are one type). *)
