(** Descriptive statistics over observed samples (e.g. execution times). *)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  median : float;
}

val summarize : float list -> summary
(** [stddev] is the {e sample} (Bessel-corrected, [n - 1] denominator)
    standard deviation: callers treat observed execution times as a sample
    of a wider behaviour space, not as the full population. For a single
    sample it is 0.
    @raise Invalid_argument on the empty list. *)

val summarize_ints : int list -> summary

val min_int_list : int list -> int
(** @raise Invalid_argument on the empty list. *)

val max_int_list : int list -> int
(** @raise Invalid_argument on the empty list. *)

val quantile : float list -> float -> float
(** [quantile samples p] is the empirical [p]-quantile with linear
    interpolation between order statistics (R/NumPy "type 7"): [p = 0] is
    the minimum, [p = 1] the maximum, [p = 0.5] the median.
    @raise Invalid_argument on the empty list or [p] outside [0, 1]. *)

val quantile_sorted : float array -> float -> float
(** {!quantile} over an array {e already sorted ascending} (unchecked) —
    the allocation-free form the bootstrap resampling loops use.
    @raise Invalid_argument on an empty array or [p] outside [0, 1]. *)

val coefficient_of_variation : summary -> float
(** [stddev / mean]; zero variability means a perfectly repeatable quantity. *)

val spread : summary -> float
(** [max - min]. *)

val pp_summary : Format.formatter -> summary -> unit
