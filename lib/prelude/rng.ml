type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }

(* splitmix64 core step: good statistical quality, trivially seedable. *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int)
                       (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  let mantissa = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  bound *. (float_of_int mantissa /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let shuffle t items =
  let tagged = List.map (fun x -> (int t 1073741823, x)) items in
  List.map snd (List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) tagged)

let split t = { state = next t }
