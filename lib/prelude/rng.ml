type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }

(* splitmix64 core step: good statistical quality, trivially seedable. *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Unbiased draw via rejection sampling. The previous implementation
   reduced a 63-bit draw with [Int64.rem] alone, which is modulo-biased:
   [0, 2^63) splits into [floor(2^63 / bound)] full cycles plus a partial
   one, so residues below [2^63 mod bound] were more likely than the rest.
   For the small bounds used by workload generators the excess is
   unobservable (~bound/2^63), but for bounds within a factor of a few of
   [max_int] — exactly the regime of the sampling estimators' keyed cell
   draws — some values were up to 1.5x as likely as others. Accept only
   draws below the largest multiple of [bound] that fits in [0, 2^63):
   within that prefix every residue appears equally often. Rejection
   probability is [(2^63 mod bound) / 2^63] < 1/2, so the loop terminates
   quickly with probability 1; for bounds that are small or a power of two
   it never rejects and the emitted sequence matches the old one. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else
    let b = Int64.of_int bound in
    let rec draw () =
      let v = Int64.logand (next t) Int64.max_int in
      let r = Int64.rem v b in
      (* v - r is the multiple of b at or below v; it exceeds
         max_int - (b - 1) iff v lies in the final partial cycle. *)
      if Int64.sub v r > Int64.sub Int64.max_int (Int64.sub b 1L) then draw ()
      else Int64.to_int r
    in
    draw ()

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  let mantissa = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  bound *. (float_of_int mantissa /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

(* Fisher-Yates. The previous sort-by-random-key scheme was biased: keys
   drawn from a finite range collide, and [List.sort] is stable, so tied
   elements kept their input order more often than a uniform shuffle
   allows. *)
let shuffle t items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let split t = { state = next t }

(* Keyed substream: the state a plain [split] chain would reach after [key]
   steps, computed directly (one multiply) and finalized through the
   splitmix64 mixer so adjacent keys decorrelate. [t] is not advanced, so
   [split_key t k] depends only on [(t's current state, k)] — the property
   that makes per-cell sampling streams independent of which worker domain
   evaluates which cell. *)
let split_key t key =
  let probe =
    { state = Int64.add t.state
        (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int key)) }
  in
  { state = next probe }
