type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }

(* splitmix64 core step: good statistical quality, trivially seedable. *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int)
                       (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  let mantissa = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  bound *. (float_of_int mantissa /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

(* Fisher-Yates. The previous sort-by-random-key scheme was biased: keys
   drawn from a finite range collide, and [List.sort] is stable, so tied
   elements kept their input order more often than a uniform shuffle
   allows. *)
let shuffle t items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let split t = { state = next t }
