(** Fixed-width binning of integer samples, with a text rendering used to
    regenerate Figure 1 of the paper (distribution of execution times). *)

type t

val of_samples : bins:int -> int list -> t
(** [of_samples ~bins samples] bins the samples into [bins] equal-width
    buckets spanning [min samples, max samples].
    @raise Invalid_argument if [samples] is empty, [bins <= 0], or the
    sample range is so wide that [max - min + 1] exceeds the native int
    range (it used to wrap silently and divide by zero). *)

val bins : t -> (int * int * int) list
(** [(lo, hi, count)] per bin; [lo] inclusive, [hi] inclusive. Edges are
    clamped to [max_sample]: when [bins] doesn't divide the sample span the
    last occupied bin's displayed range ends at [max_sample] rather than at
    the nominal [lo + width - 1] (which would overstate the support), and
    any trailing all-empty bins collapse to the degenerate range
    [(max_sample, max_sample, 0)]. *)

val total : t -> int
val min_sample : t -> int
val max_sample : t -> int

val render : ?width:int -> ?markers:(string * int) list -> t -> string
(** ASCII rendering, one bin per line, bars scaled to [width] (default 40).
    A nonzero bin always draws at least one ['#'], even when proportional
    scaling would truncate it to nothing next to a tall peak — occupied
    buckets are never hidden. [markers] annotate specific x-values (e.g.
    BCET/WCET/LB/UB) below the histogram. *)
