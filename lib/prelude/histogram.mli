(** Fixed-width binning of integer samples, with a text rendering used to
    regenerate Figure 1 of the paper (distribution of execution times). *)

type t

val of_samples : bins:int -> int list -> t
(** [of_samples ~bins samples] bins the samples into [bins] equal-width
    buckets spanning [min samples, max samples].
    @raise Invalid_argument if [samples] is empty or [bins <= 0]. *)

val bins : t -> (int * int * int) list
(** [(lo, hi, count)] per bin; [lo] inclusive, [hi] inclusive. *)

val total : t -> int
val min_sample : t -> int
val max_sample : t -> int

val render : ?width:int -> ?markers:(string * int) list -> t -> string
(** ASCII rendering, one bin per line, bars scaled to [width] (default 40).
    [markers] annotate specific x-values (e.g. BCET/WCET/LB/UB) below the
    histogram. *)
