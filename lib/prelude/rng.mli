(** Deterministic pseudo-random number generator (splitmix64).

    Experiments must be reproducible run-to-run, so all randomness in the
    repository flows through explicitly seeded generators. *)

type t

val make : int -> t
(** [make seed] is a fresh generator; equal seeds give equal streams. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). @raise Invalid_argument
    if [bound <= 0]. *)

val bool : t -> bool
val float : t -> float -> float

val pick : t -> 'a list -> 'a
(** Uniform draw from a non-empty list. @raise Invalid_argument on []. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation (array-based Fisher-Yates). *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)
