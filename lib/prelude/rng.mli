(** Deterministic pseudo-random number generator (splitmix64).

    Experiments must be reproducible run-to-run, so all randomness in the
    repository flows through explicitly seeded generators. *)

type t

val make : int -> t
(** [make seed] is a fresh generator; equal seeds give equal streams. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound) — exactly uniformly:
    draws are rejection-sampled, not reduced with a bare modulo (which
    would overweight small residues for bounds near [max_int]). A draw
    may consume more than one step of the underlying stream (with
    probability [(2^63 mod bound) / 2^63]; never for power-of-two or
    small bounds). @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
val float : t -> float -> float

val pick : t -> 'a list -> 'a
(** Uniform draw from a non-empty list. @raise Invalid_argument on []. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation (array-based Fisher-Yates). *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)

val split_key : t -> int -> t
(** [split_key t k] is an independent generator for substream [k], derived
    from [t]'s current state {e without advancing it}: equal [(state, k)]
    pairs give equal streams, and distinct keys give decorrelated streams.
    The sampling estimators key every cell's stream by cell index with
    this, so the drawn cells are identical no matter how the draw loop is
    scheduled across worker domains. *)
