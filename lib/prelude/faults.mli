(** Seed-deterministic fault injection for the robustness harness.

    The paper treats predictability as behaviour under sources of
    uncertainty; this module makes the laboratory itself measurable under
    one such source — injected faults. Code under supervision declares
    named {e injection sites} ([Faults.point "experiment:EQ4"],
    [Faults.point "parallel.spawn"]); a test, the [--inject] CLI flag or a
    seeded chaos campaign arms some of those sites with an {!action}. A
    disarmed plane is a no-op: [point] is one atomic load and a branch, so
    production runs pay nothing.

    Determinism: arrivals at each site are counted per site (atomically),
    and whether the [n]-th arrival fires is a pure function of the
    installed plan — never of wall-clock or scheduling — so a campaign
    with a given seed injects the same faults at the same arrivals on
    every run, at any [--jobs] count. *)

type action =
  | Raise              (** raise {!Injected} at the site *)
  | Delay of float     (** sleep this many seconds, then continue *)
  | Timeout            (** raise {!Forced_timeout}: simulates a task
                           blowing its deadline without the wall-clock
                           cost of actually sleeping through it *)

type site = {
  name : string;
  action : action;
  skip : int;   (** arrivals ignored before the site starts firing *)
  fires : int;  (** arrivals that fire after [skip]; [-1] = every one *)
}

exception Injected of string
(** Raised by an armed [Raise] site; the payload is the site name. *)

exception Forced_timeout of string
(** Raised by an armed [Timeout] site; the payload is the site name.
    Supervisors classify it as a deadline overrun, not a crash. *)

val site : ?skip:int -> ?fires:int -> string -> action -> site
(** [site name action] fires on the first arrival only ([skip = 0],
    [fires = 1]) unless overridden.
    @raise Invalid_argument on [skip < 0] or [fires < -1]. *)

val arm : site list -> unit
(** Install a plan, replacing any previous one and zeroing all arrival
    counters. Duplicate site names keep the first entry. *)

val disarm : unit -> unit
(** Remove the plan. Subsequent {!point} calls are no-ops again. *)

val armed : unit -> bool

val point : string -> unit
(** Declare an injection site and pass through it. No-op unless a plan
    entry with this name is armed and this arrival is within its
    [skip]/[fires] window; otherwise performs the entry's {!action}. *)

val parse_spec : string -> (site, string) result
(** Parse one [--inject] argument: [SITE=ACTION] where [ACTION] is
    [raise], [timeout] or [delay:MS]. The last [=] splits, so site names
    may contain [=]-free colons ([experiment:EQ4=raise]). The parsed site
    fires on its first arrival only. *)

val campaign : seed:int -> string list -> site list
(** Seed-deterministic chaos plan over the given site names: each name
    independently draws (from a splitmix stream keyed on [seed] and the
    name) one of {e no fault} (most likely), [Raise], [Delay] (a few
    milliseconds) or [Timeout]. Equal seeds and names give equal plans —
    the basis of [predlab chaos --seed N]. *)

val describe : site -> string
(** ["experiment:EQ4 raise (skip 0, fires 1)"] — for logs and reports. *)
