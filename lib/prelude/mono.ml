(* CLOCK_MONOTONIC reading, rebased to a process-lifetime origin so the
   float conversion keeps full nanosecond resolution for centuries of
   uptime rather than burning mantissa bits on the system's boot offset. *)

let origin_ns = Monotonic_clock.now ()

let now_ns () = Int64.sub (Monotonic_clock.now ()) origin_ns

let now () = Int64.to_float (now_ns ()) *. 1e-9

(* Sleep measured on the monotonic clock: [Unix.sleepf] returns early when
   a signal arrives (either raising EINTR or returning silently after the
   handler runs, depending on the platform), and its duration argument is
   serviced by the kernel against CLOCK_REALTIME on some systems. Looping
   until the monotonic deadline covers both failure modes. *)
let sleep duration =
  if duration > 0. then begin
    let deadline = now () +. duration in
    let rec wait () =
      let remaining = deadline -. now () in
      if remaining > 0. then begin
        (try Unix.sleepf remaining
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        wait ()
      end
    in
    wait ()
  end
