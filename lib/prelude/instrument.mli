(** Lightweight per-domain counters for experiment instrumentation.

    The hot kernels ({!Quantify.evaluate}-style [Q * I] sweeps and
    replacement-policy state explorations) report how much work they did by
    bumping these counters; the experiment harness snapshots them around
    each run to attribute cost per experiment.

    Counters live in domain-local storage: an experiment running on one
    worker domain never sees the counts of an experiment running
    concurrently on another. Parallel kernels are expected to credit their
    whole sweep to the {e calling} domain once the sweep completes (they
    know its size), so nested data-parallelism attributes correctly. *)

type counts = {
  evals : int;  (** kernel evaluations: [T_p(q,i)] calls, states explored *)
  cells : int;  (** [Q * I] matrix cells materialised *)
}

val reset : unit -> unit
(** Zero the calling domain's counters. *)

val snapshot : unit -> counts
(** The calling domain's counters since the last {!reset}. *)

val add_evals : int -> unit
val add_cells : int -> unit

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]). *)
