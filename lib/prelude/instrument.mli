(** Lightweight per-domain counters for experiment instrumentation.

    The hot kernels ({!Quantify.evaluate}-style [Q * I] sweeps and
    replacement-policy state explorations) report how much work they did by
    bumping these counters; the experiment harness snapshots them around
    each run and attributes the {e delta} to that experiment.

    Counters live in domain-local storage and grow monotonically — there is
    deliberately no reset, so a pool worker interleaving several
    experiments' tasks never wipes or double-counts another task's
    contribution. An experiment running on one worker domain never sees the
    counts of an experiment running concurrently on another; on pool drain
    each worker's total is credited once to the submitting domain, so
    aggregate counts on the caller stay consistent with the per-experiment
    deltas. *)

type counts = {
  evals : int;  (** kernel evaluations: [T_p(q,i)] calls, states explored *)
  cells : int;  (** [Q * I] matrix cells materialised *)
  memo_hits : int;    (** fast-path [T_p] cells answered from the memo table *)
  memo_misses : int;  (** fast-path [T_p] cells that had to be replayed *)
}

val snapshot : unit -> counts
(** The calling domain's counters (cumulative since the domain started;
    callers wanting per-phase numbers take deltas between snapshots). *)

val add_evals : int -> unit
val add_cells : int -> unit
val add_memo_hits : int -> unit
val add_memo_misses : int -> unit

val now : unit -> float
(** Monotonic seconds ({!Mono.now}): safe for interval and deadline math,
    immune to NTP/wall-clock adjustment. Readings are relative to an
    arbitrary process-lifetime origin — take differences, never treat one
    as a timestamp. *)
