(* Injection sites are consulted on hot-ish paths (once per experiment
   attempt, once per domain spawn), so the disarmed fast path is a single
   atomic load of the empty plan. Arrival counters are per-site atomics:
   which arrival a given call is never depends on scheduling (each site is
   reached a deterministic number of times by construction of the call
   sites), so a plan fires identically at any job count. *)

type action =
  | Raise
  | Delay of float
  | Timeout

type site = {
  name : string;
  action : action;
  skip : int;
  fires : int;
}

exception Injected of string
exception Forced_timeout of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "Faults.Injected(%S)" site)
    | Forced_timeout site -> Some (Printf.sprintf "Faults.Forced_timeout(%S)" site)
    | _ -> None)

let site ?(skip = 0) ?(fires = 1) name action =
  if skip < 0 then invalid_arg "Faults.site: skip must be >= 0";
  if fires < -1 then invalid_arg "Faults.site: fires must be >= -1";
  { name; action; skip; fires }

type armed_site = {
  spec : site;
  arrivals : int Atomic.t;
}

let plan : armed_site list Atomic.t = Atomic.make []

let arm sites =
  let rec uniq seen = function
    | [] -> []
    | s :: rest ->
      if List.mem s.name seen then uniq seen rest
      else { spec = s; arrivals = Atomic.make 0 } :: uniq (s.name :: seen) rest
  in
  Atomic.set plan (uniq [] sites)

let disarm () = Atomic.set plan []

let armed () = Atomic.get plan <> []

let perform name = function
  | Raise -> raise (Injected name)
  | Timeout -> raise (Forced_timeout name)
  | Delay s -> Mono.sleep s

let point name =
  match Atomic.get plan with
  | [] -> ()
  | entries ->
    match List.find_opt (fun e -> e.spec.name = name) entries with
    | None -> ()
    | Some entry ->
      let n = Atomic.fetch_and_add entry.arrivals 1 in
      let { action; skip; fires; _ } = entry.spec in
      if n >= skip && (fires = -1 || n < skip + fires) then
        perform name action

let parse_spec spec =
  match String.rindex_opt spec '=' with
  | None ->
    Error (Printf.sprintf "%S: expected SITE=ACTION" spec)
  | Some i ->
    let name = String.sub spec 0 i in
    let action_s = String.sub spec (i + 1) (String.length spec - i - 1) in
    if name = "" then Error (Printf.sprintf "%S: empty site name" spec)
    else begin
      let delay_prefix = "delay:" in
      let action =
        if action_s = "raise" then Ok Raise
        else if action_s = "timeout" then Ok Timeout
        else if String.length action_s > String.length delay_prefix
             && String.sub action_s 0 (String.length delay_prefix) = delay_prefix
        then
          let ms =
            String.sub action_s (String.length delay_prefix)
              (String.length action_s - String.length delay_prefix)
          in
          match float_of_string_opt ms with
          | Some ms when ms >= 0. -> Ok (Delay (ms /. 1000.))
          | _ -> Error (Printf.sprintf "%S: bad delay %S (milliseconds)" spec ms)
        else
          Error
            (Printf.sprintf "%S: unknown action %S (raise|timeout|delay:MS)"
               spec action_s)
      in
      Result.map (fun action -> site name action) action
    end

(* Splitmix keyed on (seed, site name): Hashtbl.hash on strings is a pure
   function of the contents, so plans are stable across processes. *)
let campaign ~seed names =
  List.filter_map
    (fun name ->
       let rng = Rng.make ((seed * 0x9e3779b1) lxor Hashtbl.hash name) in
       match Rng.int rng 100 with
       | d when d < 60 -> None
       | d when d < 75 -> Some (site name Raise)
       | d when d < 90 -> Some (site name (Delay 0.002))
       | _ -> Some (site name Timeout))
    names

let action_string = function
  | Raise -> "raise"
  | Timeout -> "timeout"
  | Delay s -> Printf.sprintf "delay:%gms" (s *. 1000.)

let describe s =
  Printf.sprintf "%s %s (skip %d, fires %s)" s.name (action_string s.action)
    s.skip
    (if s.fires = -1 then "all" else string_of_int s.fires)
