type t = {
  lo : int;
  hi : int;
  width : int;          (* bin width *)
  counts : int array;
  total : int;
}

let of_samples ~bins samples =
  if bins <= 0 then invalid_arg "Histogram.of_samples: bins must be positive";
  match samples with
  | [] -> invalid_arg "Histogram.of_samples: empty sample list"
  | first :: rest ->
    let lo = List.fold_left Stdlib.min first rest in
    let hi = List.fold_left Stdlib.max first rest in
    let span = hi - lo + 1 in
    let width = (span + bins - 1) / bins in
    let counts = Array.make bins 0 in
    let add x =
      let idx = Stdlib.min (bins - 1) ((x - lo) / width) in
      counts.(idx) <- counts.(idx) + 1
    in
    List.iter add samples;
    { lo; hi; width; counts; total = List.length samples }

let bins t =
  Array.to_list
    (Array.mapi
       (fun i c -> (t.lo + (i * t.width), t.lo + ((i + 1) * t.width) - 1, c))
       t.counts)

let total t = t.total
let min_sample t = t.lo
let max_sample t = t.hi

let render ?(width = 40) ?(markers = []) t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  let bar count =
    let len = count * width / peak in
    String.make len '#'
  in
  List.iter
    (fun (lo, hi, count) ->
       Buffer.add_string buf
         (Printf.sprintf "%6d..%6d | %-*s %d\n" lo hi width (bar count) count))
    (bins t);
  List.iter
    (fun (name, x) ->
       Buffer.add_string buf (Printf.sprintf "%-6s = %d\n" name x))
    markers;
  Buffer.contents buf
