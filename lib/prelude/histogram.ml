type t = {
  lo : int;
  hi : int;
  width : int;          (* bin width *)
  counts : int array;
  total : int;
}

let of_samples ~bins samples =
  if bins <= 0 then invalid_arg "Histogram.of_samples: bins must be positive";
  match samples with
  | [] -> invalid_arg "Histogram.of_samples: empty sample list"
  | first :: rest ->
    let lo = List.fold_left Stdlib.min first rest in
    let hi = List.fold_left Stdlib.max first rest in
    (* hi - lo + 1 silently wraps for extreme samples (e.g. min_int and
       max_int together), leaving a non-positive width and a
       Division_by_zero in the binning below — reject the range instead.
       The true difference is >= 0, so a negative [hi - lo] means the
       subtraction itself wrapped; [hi - lo = max_int] means the + 1
       would. *)
    if hi - lo < 0 || hi - lo = max_int then
      invalid_arg
        "Histogram.of_samples: sample range too wide (hi - lo + 1 exceeds \
         the native int range)";
    let span = hi - lo + 1 in
    let width = (span + bins - 1) / bins in
    let counts = Array.make bins 0 in
    let add x =
      let idx = Stdlib.min (bins - 1) ((x - lo) / width) in
      counts.(idx) <- counts.(idx) + 1
    in
    List.iter add samples;
    { lo; hi; width; counts; total = List.length samples }

(* The nominal upper edge lo + (i+1)*width - 1 overshoots the support when
   bins doesn't divide the span (e.g. 10 samples over 0..9 in 3 bins of
   width 4 would display "8..11" for a histogram whose largest sample is
   9) — clamp to the observed maximum so rendered Figure-1 bucket ranges
   never overstate it. A trailing bin that lies entirely above the support
   keeps count 0 and collapses to the empty range (hi, hi). *)
let bins t =
  Array.to_list
    (Array.mapi
       (fun i c ->
          let lo = Stdlib.min t.hi (t.lo + (i * t.width)) in
          let hi = Stdlib.min t.hi (t.lo + ((i + 1) * t.width) - 1) in
          (lo, hi, c))
       t.counts)

let total t = t.total
let min_sample t = t.lo
let max_sample t = t.hi

let render ?(width = 40) ?(markers = []) t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  let bar count =
    let len = count * width / peak in
    (* Integer truncation draws nothing for small-but-occupied bins next
       to a tall peak; an occupied bucket must never render as empty, so
       floor at one '#' for any nonzero count. *)
    let len = if count > 0 && len = 0 then 1 else len in
    String.make len '#'
  in
  List.iter
    (fun (lo, hi, count) ->
       Buffer.add_string buf
         (Printf.sprintf "%6d..%6d | %-*s %d\n" lo hi width (bar count) count))
    (bins t);
  List.iter
    (fun (name, x) ->
       Buffer.add_string buf (Printf.sprintf "%-6s = %d\n" name x))
    markers;
  Buffer.contents buf
