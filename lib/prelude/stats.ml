type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  median : float;
}

let summarize samples =
  match samples with
  | [] -> invalid_arg "Stats.summarize: empty sample list"
  | _ :: _ ->
    let sorted = List.sort Float.compare samples in
    let count = List.length sorted in
    let total = List.fold_left ( +. ) 0. sorted in
    let mean = total /. float_of_int count in
    let sq_dev x = (x -. mean) *. (x -. mean) in
    let sq_sum = List.fold_left (fun acc x -> acc +. sq_dev x) 0. sorted in
    (* Sample (Bessel-corrected) standard deviation: the samples are
       observations of a wider behaviour space, not the whole population.
       A single observation carries no spread information: stddev = 0. *)
    let stddev =
      if count < 2 then 0. else sqrt (sq_sum /. float_of_int (count - 1))
    in
    let median =
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      if n mod 2 = 1 then arr.(n / 2)
      else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.
    in
    { count; min = List.nth sorted 0; max = List.nth sorted (count - 1);
      mean; stddev; median }

let summarize_ints samples = summarize (List.map float_of_int samples)

let min_int_list = function
  | [] -> invalid_arg "Stats.min_int_list: empty list"
  | x :: rest -> List.fold_left Stdlib.min x rest

let max_int_list = function
  | [] -> invalid_arg "Stats.max_int_list: empty list"
  | x :: rest -> List.fold_left Stdlib.max x rest

(* Empirical quantile with linear interpolation between order statistics
   (the "type 7" definition shared by R and NumPy): p = 0 is the minimum,
   p = 1 the maximum. [quantile_sorted] assumes its array is already
   sorted ascending — the sampling estimators' bootstrap loops call it per
   resample and must not pay a re-sort each time. *)
let quantile_sorted arr p =
  if Array.length arr = 0 then
    invalid_arg "Stats.quantile: empty sample list";
  if p < 0. || p > 1. || Float.is_nan p then
    invalid_arg "Stats.quantile: p must be within [0, 1]";
  let n = Array.length arr in
  let h = p *. float_of_int (n - 1) in
  let k = int_of_float (Float.floor h) in
  let k' = Stdlib.min (n - 1) (k + 1) in
  arr.(k) +. ((h -. float_of_int k) *. (arr.(k') -. arr.(k)))

let quantile samples p =
  let arr = Array.of_list (List.sort Float.compare samples) in
  quantile_sorted arr p

let coefficient_of_variation s = if s.mean = 0. then 0. else s.stddev /. s.mean
let spread s = s.max -. s.min

let pp_summary ppf s =
  Format.fprintf ppf "n=%d min=%.1f max=%.1f mean=%.2f sd=%.2f med=%.1f"
    s.count s.min s.max s.mean s.stddev s.median
