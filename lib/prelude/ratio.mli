(** Exact rational arithmetic over native integers.

    Cycle counts and their quotients in predictability computations are small,
    so native [int] numerators/denominators (with systematic normalisation)
    suffice; this avoids a dependency on an arbitrary-precision library. All
    values are kept in lowest terms with a positive denominator.

    Large operands (long-kernel cycle counts times large denominators, as
    produced by {!Composition} interval products) are handled by reducing
    with gcds {e before} multiplying; when even the lowest-terms result
    cannot be represented in 63-bit ints, operations raise {!Overflow}
    rather than silently wrapping. [compare] is exact for all
    representable values (continued-fraction descent, no cross
    multiplication). *)

type t

exception Overflow
(** Raised when a result's lowest-terms numerator or denominator exceeds
    the native integer range. *)

val make : int -> int -> t
(** [make num den] is the rational [num/den] in lowest terms.
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val inv : t -> t
(** @raise Division_by_zero on [zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
