let range lo hi = if hi <= lo then [] else List.init (hi - lo) (fun i -> lo + i)

let cartesian xs ys =
  List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let pairs xs = cartesian xs xs

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let uniq cmp xs =
  let sorted = List.sort cmp xs in
  let rec dedup = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: y :: rest -> if cmp x y = 0 then dedup (y :: rest) else x :: dedup (y :: rest)
  in
  dedup sorted

let sum = List.fold_left ( + ) 0

let rec transpose = function
  | [] -> []
  | [] :: _ -> []
  | rows -> List.map List.hd rows :: transpose (List.map List.tl rows)
