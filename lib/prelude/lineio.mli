(** Bounded, deadline-aware line IO over raw [Unix] file descriptors.

    The serving plane (and any reader of untrusted bytes) must not inherit
    [input_line]'s failure modes: unbounded buffering of an unterminated
    line, and unbounded blocking on a wedged peer. A {!reader} enforces a
    hard per-line byte cap — an oversized line is {e consumed} (its bytes
    discarded up to the newline) and reported as [`Oversized], so the
    stream stays aligned and the connection survives — and every call can
    carry a monotonic-clock budget ({!Mono}), after which the caller
    decides what a silent peer means (reap it, retry, give up).

    Used by the serve daemon's connection loop, the serve client's
    response reader and the journal replayer. *)

type line =
  [ `Line of string     (** a complete ['\n']-terminated line, within the cap *)
  | `Partial of string  (** EOF with unterminated bytes buffered: a torn frame *)
  | `Eof                (** clean end of stream (or the peer reset it) *)
  | `Oversized          (** a line over [max_line] bytes was discarded whole *)
  | `Idle               (** the [idle_s] budget passed with the line incomplete *)
  ]

type reader

val default_max_line : int
(** 1 MiB. *)

val reader : ?max_line:int -> Unix.file_descr -> reader
(** A buffered line reader over [fd] (which the caller still owns and
    closes). [max_line] caps the bytes of any single line (default
    {!default_max_line}).
    @raise Invalid_argument if [max_line < 1]. *)

val read_line : ?idle_s:float -> reader -> line
(** Read the next line (without its ['\n']). With [idle_s] the {e whole
    call} gets that monotonic budget — a drip-feeding peer must complete
    the line within it, so slowloris writers are bounded, not just silent
    ones. Without it the call blocks like [input_line]. Read errors
    (ECONNRESET and friends) are reported as [`Eof]: to a line reader a
    reset peer and a closed one are the same event.
    @raise Invalid_argument if [idle_s <= 0]. *)

val write_line :
  ?deadline_s:float -> Unix.file_descr -> string ->
  (unit, [ `Closed | `Timeout ]) result
(** Write [line ^ "\n"], looping over partial writes. With [deadline_s]
    the whole write gets that monotonic budget — a peer that stops
    draining its socket yields [Error `Timeout] instead of parking the
    writer forever. A broken pipe / reset is [Error `Closed].
    @raise Invalid_argument if [deadline_s <= 0]. *)
