(** Monotonic time for all interval math: deadlines, backoff, bench and
    experiment timings.

    [Unix.gettimeofday] is wall-clock time — NTP slews and steps it, the
    administrator can set it, and a leap-second smear bends it. Any
    subtraction of two wall-clock readings (a supervisor deadline, a
    retry backoff, a bench sample) silently inherits those jumps: a
    long-running daemon can observe a deadline "expire" the moment the
    clock steps forward, or a bench kernel report negative elapsed time.
    This module reads [CLOCK_MONOTONIC] (via the bechamel monotonic-clock
    binding, a dependency-free-at-runtime stub over [clock_gettime]),
    which by construction never goes backwards and is immune to clock
    adjustment.

    Readings are seconds since an arbitrary process-lifetime origin (the
    first read of the clock at module initialisation) — meaningful only
    as differences, never as timestamps. The clock is system-wide, so
    differences taken across domains are coherent. *)

val now : unit -> float
(** Monotonic seconds since the process-lifetime origin. Non-decreasing
    across successive calls on any domain. *)

val now_ns : unit -> int64
(** The raw monotonic reading in nanoseconds (same origin as {!now});
    for callers that want to defer the float conversion. *)

val sleep : float -> unit
(** Sleep at least this many {e monotonic} seconds. [Unix.sleepf] both
    under-sleeps when a signal interrupts it (EINTR) and measures against
    the wall clock; this loops on the monotonic clock until the full
    duration has elapsed, swallowing EINTR. Non-positive durations return
    immediately. *)
