(** A small fixed-size domain pool for data-parallel evaluation.

    Every headline quantity of the paper (Pr/SIPr/IIPr, exhaustive
    BCET/WCET, the evict/fill metrics) is a min/max over an exhaustive
    [Q * I] or state-space enumeration whose elements are independent, so
    they parallelise trivially across OCaml 5 domains. This module provides
    the one primitive those hot paths share: evaluate a pure function over
    a sequence on a fixed number of worker domains, with results delivered
    in input order regardless of scheduling.

    Guarantees:
    - {b deterministic ordering}: [map ~jobs f xs] returns exactly
      [List.map f xs] for any [jobs] — results are written by input index,
      never by completion order;
    - {b exception transparency}: if some [f x] raises, the first recorded
      exception (with its backtrace) is re-raised in the calling domain
      after all workers have stopped;
    - {b bounded width}: at most [jobs] domains run tasks at any time
      (including the calling domain's contribution via [Domain.join]);
    - {b no nested pools}: a call made from inside a pool task runs
      sequentially on that worker domain (same deterministic result), so
      arbitrarily nested data-parallelism never spawns more than
      [jobs + 1] live domains — the OCaml runtime caps total domains at
      roughly 128, which naive pool-per-worker nesting would exceed.

    The pool is built only on [Domain], [Mutex] and [Condition] from the
    standard library — no external dependencies. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val set_default_jobs : int -> unit
(** Set the process-wide default used when [?jobs] is omitted (the
    [--jobs] flag of [predlab] lands here).
    @raise Invalid_argument if the argument is [< 1]. *)

val default_jobs : unit -> int
(** The current default: the last [set_default_jobs] value, or
    [recommended_jobs ()] if never set. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs = List.map f xs], computed on [min jobs (length xs)]
    worker domains. [jobs = 1] runs sequentially in the calling domain. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}; result index [i] holds [f xs.(i)]. *)

val fold :
  ?jobs:int -> ?chunk:int -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) ->
  init:'b -> 'a list -> 'b
(** Chunked parallel map-reduce: equivalent to
    [List.fold_left (fun acc x -> combine acc (map x)) init xs] whenever
    [combine] is associative and [init] is a left identity for the result.
    Items are split into chunks of [chunk] (default 16) consecutive
    elements; chunks are mapped in parallel and partial results are
    combined strictly in input order, so the result is deterministic. *)
