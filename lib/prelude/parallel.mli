(** A small fixed-size domain pool for data-parallel evaluation.

    Every headline quantity of the paper (Pr/SIPr/IIPr, exhaustive
    BCET/WCET, the evict/fill metrics) is a min/max over an exhaustive
    [Q * I] or state-space enumeration whose elements are independent, so
    they parallelise trivially across OCaml 5 domains. This module provides
    the one primitive those hot paths share: evaluate a pure function over
    a sequence on a fixed number of worker domains, with results delivered
    in input order regardless of scheduling.

    Guarantees:
    - {b deterministic ordering}: [map ~jobs f xs] returns exactly
      [List.map f xs] for any [jobs] — results are written by input index,
      never by completion order;
    - {b exception transparency}: if exactly one task raises, that
      exception (with its backtrace) is re-raised in the calling domain
      after all workers have stopped; if several tasks fail concurrently,
      none is silently dropped — {!Multiple_failures} carries the count
      and the earliest-recorded exception ({!map_result} instead isolates
      failures per task and never raises from a task);
    - {b bounded width}: at most [jobs] domains run tasks at any time
      (including the calling domain's contribution via [Domain.join]);
    - {b no nested pools}: a call made from inside a pool task runs
      sequentially on that worker domain (same deterministic result), so
      arbitrarily nested data-parallelism never spawns more than
      [jobs + 1] live domains — the OCaml runtime caps total domains at
      roughly 128, which naive pool-per-worker nesting would exceed;
    - {b graceful degradation}: if [Domain.spawn] fails partway through
      pool creation (domain cap reached, or the ["parallel.spawn"]
      {!Faults} site armed), the call degrades to the achieved worker
      count — down to running inline on the calling domain — instead of
      failing and leaking the domains already spawned.

    The pool is built only on [Domain], [Mutex] and [Condition] from the
    standard library — no external dependencies. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val set_default_jobs : int -> unit
(** Set the process-wide default used when [?jobs] is omitted (the
    [--jobs] flag of [predlab] lands here).
    @raise Invalid_argument if the argument is [< 1]. *)

val default_jobs : unit -> int
(** The current default: the last [set_default_jobs] value, or
    [recommended_jobs ()] if never set. *)

exception Multiple_failures of { count : int; first : exn }
(** Raised by {!map}/{!map_array}/{!fold} when more than one task failed:
    every failure is collected (no new work starts after the first), and
    the count plus the earliest-recorded exception are surfaced — with the
    earliest failure's backtrace — instead of silently discarding all but
    one. A single failure re-raises the original exception unchanged. *)

exception Deadline_exceeded of { elapsed_s : float; deadline_s : float }
(** A task overran its cooperative [?deadline_s] budget. Raised at
    checkpoints ({!check_deadline}, hit between elements by every nested
    [Parallel] loop) and post-hoc when a deadlined {!map_result} task
    returns after its budget. *)

val check_deadline : unit -> unit
(** Cooperative checkpoint: no-op unless the innermost enclosing
    {!with_deadline} / deadlined {!map_result} task on this domain has
    overrun its budget, in which case {!Deadline_exceeded} is raised.
    Long-running kernels may call this at safe points; all [Parallel]
    element loops already do. *)

val with_deadline : deadline_s:float -> (unit -> 'a) -> 'a
(** Arm the cooperative deadline on the calling domain for the duration of
    the thunk (nestable; the previous budget is restored on exit). The
    thunk's nested [Parallel] loops hit {!check_deadline} between
    elements, and an overrun is also detected post-hoc when the thunk
    returns — either way {!Deadline_exceeded} is raised. This is the
    per-attempt budget primitive behind [predlab --deadline].
    @raise Invalid_argument if [deadline_s <= 0]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs = List.map f xs], computed on [min jobs (length xs)]
    worker domains. [jobs = 1] runs sequentially in the calling domain. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}; result index [i] holds [f xs.(i)]. *)

type task_error = {
  index : int;  (** input position of the failed element *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

val map_result :
  ?jobs:int -> ?deadline_s:float -> ('a -> 'b) -> 'a list ->
  ('b, task_error) Stdlib.result list
(** Per-task isolation: like {!map}, but a raising task yields
    [Error { index; exn; backtrace }] at its input position instead of
    poisoning the whole batch — every other task still runs and returns
    [Ok]. With [?deadline_s], each task gets that cooperative budget
    (measured from the moment the task starts running, not from
    submission): an overrun detected at a {!check_deadline} checkpoint or
    when the task returns yields [Error] with {!Deadline_exceeded}.
    Results are in input order for any [jobs]. Tasks pass through the
    ["parallel.task"] {!Faults} site.
    @raise Invalid_argument if [deadline_s <= 0]. *)

val fold :
  ?jobs:int -> ?chunk:int -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) ->
  init:'b -> 'a list -> 'b
(** Chunked parallel map-reduce: equivalent to
    [List.fold_left (fun acc x -> combine acc (map x)) init xs] whenever
    [combine] is associative and [init] is a left identity for the result.
    Items are split into chunks of [chunk] (default 16) consecutive
    elements; chunks are mapped in parallel and partial results are
    combined strictly in input order, so the result is deterministic. *)
