type t = int Atomic.t

let make () = Atomic.make 0
let incr t = Atomic.incr t
let decr t = Atomic.decr t
let add t n = ignore (Atomic.fetch_and_add t n)
let get t = Atomic.get t
