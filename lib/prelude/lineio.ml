(* Bounded, deadline-aware line IO over raw file descriptors.

   The stdlib's [input_line] has two failure modes a server (or any
   long-running reader of untrusted bytes) cannot afford: it buffers an
   unterminated line without bound (one adversarial connection exhausts
   memory), and it blocks without limit (one wedged peer parks a worker
   forever). This module reads lines through a caller-owned buffer with a
   hard per-line byte cap and an optional monotonic-clock budget per call,
   and writes with the mirror-image budget. All waiting is [Unix.select]
   on the fd, so a budget of [None] degrades to plain blocking IO. *)

type line =
  [ `Line of string
  | `Partial of string
  | `Eof
  | `Oversized
  | `Idle ]

type reader = {
  fd : Unix.file_descr;
  max_line : int;
  chunk : Bytes.t;
  mutable pending : string;  (* bytes read but not yet returned *)
  mutable scanned : int;     (* prefix of [pending] known newline-free *)
}

let default_max_line = 1 lsl 20

let reader ?(max_line = default_max_line) fd =
  if max_line < 1 then invalid_arg "Lineio.reader: max_line must be >= 1";
  { fd; max_line; chunk = Bytes.create 8192; pending = ""; scanned = 0 }

(* Wait until [fd] is ready (readable or writable) or the monotonic
   deadline passes. [None] means block in the IO call itself. *)
let wait ~read fd deadline =
  match deadline with
  | None -> `Ready
  | Some deadline ->
    let rec go () =
      let remaining = deadline -. Mono.now () in
      if remaining <= 0. then `Deadline
      else
        let rd = if read then [ fd ] else [] in
        let wr = if read then [] else [ fd ] in
        match Unix.select rd wr [] remaining with
        | [], [], _ -> go ()
        | _ -> `Ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

let read_line ?idle_s t =
  (match idle_s with
   | Some s when s <= 0. -> invalid_arg "Lineio.read_line: idle_s must be > 0"
   | _ -> ());
  let deadline = Option.map (fun s -> Mono.now () +. s) idle_s in
  (* [discarding] = the current line already blew the cap; its bytes are
     dropped until the terminating newline so the connection stays usable
     for the next request. *)
  let rec refill ~discarding =
    match wait ~read:true t.fd deadline with
    | `Deadline -> `Idle
    | `Ready -> (
        match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill ~discarding
        | exception Unix.Unix_error _ -> at_eof ~discarding
        | 0 -> at_eof ~discarding
        | n ->
          let s = Bytes.sub_string t.chunk 0 n in
          if discarding then
            match String.index_opt s '\n' with
            | Some i ->
              t.pending <-
                String.sub s (i + 1) (String.length s - i - 1);
              t.scanned <- 0;
              `Oversized
            | None -> refill ~discarding
          else begin
            t.pending <- t.pending ^ s;
            scan ()
          end)
  and at_eof ~discarding =
    if discarding then `Eof
    else if t.pending = "" then `Eof
    else begin
      let line = t.pending in
      t.pending <- "";
      t.scanned <- 0;
      `Partial line
    end
  and scan () =
    match String.index_from_opt t.pending t.scanned '\n' with
    | Some i ->
      let line = String.sub t.pending 0 i in
      t.pending <-
        String.sub t.pending (i + 1) (String.length t.pending - i - 1);
      t.scanned <- 0;
      if String.length line > t.max_line then `Oversized else `Line line
    | None ->
      t.scanned <- String.length t.pending;
      if t.scanned > t.max_line then begin
        t.pending <- "";
        t.scanned <- 0;
        refill ~discarding:true
      end
      else refill ~discarding:false
  in
  scan ()

let write_line ?deadline_s fd line =
  (match deadline_s with
   | Some s when s <= 0. ->
     invalid_arg "Lineio.write_line: deadline_s must be > 0"
   | _ -> ());
  let deadline = Option.map (fun s -> Mono.now () +. s) deadline_s in
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off >= len then Ok ()
    else
      match wait ~read:false fd deadline with
      | `Deadline -> Error `Timeout
      | `Ready -> (
          match Unix.write_substring fd data off (len - off) with
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            go off
          | exception Unix.Unix_error _ -> Error `Closed
          | exception Sys_error _ -> Error `Closed
          | n -> go (off + n))
  in
  go 0
