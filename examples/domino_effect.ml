(* The domino effect of Section 2.2, interactively:

     dune exec examples/domino_effect.exe

   Runs the Equation-4 kernel on the greedy dual-unit machine from its two
   distinguished initial states, prints the 9n+1 / 12n series, and shows how
   the round-robin dispatch ablation removes the effect. *)

let () =
  print_endline "Domino effect (Eq. 4): same program, two initial pipeline states";
  print_endline "  q1* = partially filled (U0 busy 1 more cycle), q2* = empty";
  print_endline "";
  Printf.printf "%4s  %10s  %10s  %8s\n" "n" "T(q1*)" "T(q2*)" "SIPr(n)";
  List.iter
    (fun n ->
       let t1 = Predictability.Exp_eq4.time ~dispatch:Pipeline.Ooo.Greedy n
           Predictability.Exp_eq4.q_primed
       in
       let t2 = Predictability.Exp_eq4.time ~dispatch:Pipeline.Ooo.Greedy n
           Predictability.Exp_eq4.q_empty
       in
       Printf.printf "%4d  %10d  %10d  %8.4f\n" n t1 t2
         (float_of_int (min t1 t2) /. float_of_int (max t1 t2)))
    [ 1; 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 ];
  print_endline "";
  print_endline "The difference grows by 3 cycles per iteration: unbounded, the";
  print_endline "defining property of a domino effect. SIPr converges to 3/4.";
  print_endline "";
  let verdict =
    Predictability.Domino.detect
      ~time:(fun n q -> Predictability.Exp_eq4.time ~dispatch:Pipeline.Ooo.Greedy n q)
      ~q1:Predictability.Exp_eq4.q_primed ~q2:Predictability.Exp_eq4.q_empty
      ~horizon:32
  in
  Printf.printf "detector: diverges=%b" verdict.Predictability.Domino.diverges;
  (match verdict.Predictability.Domino.ratio_limit with
   | Some r -> Printf.printf ", SIPr limit = %s\n" (Prelude.Ratio.to_string r)
   | None -> print_newline ());
  print_endline "";
  print_endline "Ablation: a round-robin dispatcher has no stable bad schedule:";
  List.iter
    (fun n ->
       let t1 = Predictability.Exp_eq4.time ~dispatch:Pipeline.Ooo.Alternate n
           Predictability.Exp_eq4.q_primed
       in
       let t2 = Predictability.Exp_eq4.time ~dispatch:Pipeline.Ooo.Alternate n
           Predictability.Exp_eq4.q_empty
       in
       Printf.printf "  n=%2d: T(q1*)=%4d  T(q2*)=%4d  (difference %d)\n"
         n t1 t2 (abs (t1 - t2)))
    [ 4; 16; 64 ]
