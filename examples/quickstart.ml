(* Quickstart: compute the paper's predictability quantities (Defs. 2-5)
   for a small program on the in-order machine.

     dune exec examples/quickstart.exe

   Steps:
   1. pick a workload (a structured program + a finite set of admissible
      inputs I);
   2. build the uncertainty set Q of initial hardware states (cache
      contents, here);
   3. evaluate T_p(q, i) over Q x I and derive Pr, SIPr, IIPr, BCET, WCET;
   4. bracket them with the sound static bounds LB and UB. *)

let () =
  (* 1. The program under analysis: binary search over a 16-entry table. *)
  let w = Isa.Workload.bsearch ~n:16 in
  let program, shapes = Isa.Workload.program w in
  Printf.printf "workload: %s (%s)\n" w.Isa.Workload.name
    w.Isa.Workload.description;
  Printf.printf "admissible inputs |I| = %d\n" (List.length w.Isa.Workload.inputs);

  (* 2. Uncertainty about the initial hardware state: a cold machine plus
     five warmed cache states. *)
  let states = Predictability.Harness.inorder_states program w in
  Printf.printf "initial hardware states |Q| = %d\n\n" (List.length states);

  (* 3. Exhaustive evaluation of T_p(q, i). *)
  let matrix =
    Predictability.Quantify.evaluate ~states ~inputs:w.Isa.Workload.inputs
      ~time:(Predictability.Harness.inorder_time program) ()
  in
  let pr = Predictability.Quantify.pr matrix in
  let sipr = Predictability.Quantify.sipr matrix in
  let iipr = Predictability.Quantify.iipr matrix in
  Printf.printf "Pr_p(Q, I) = %s   (Def. 3: min T / max T over Q x I)\n"
    (Predictability.Harness.ratio_string pr);
  Printf.printf "SIPr_p     = %s   (Def. 4: hardware-state-induced)\n"
    (Predictability.Harness.ratio_string sipr);
  Printf.printf "IIPr_p     = %s   (Def. 5: input-induced)\n\n"
    (Predictability.Harness.ratio_string iipr);

  (* 4. Sound static bounds around the exhaustive BCET/WCET. *)
  let bcet = Predictability.Quantify.bcet matrix in
  let wcet = Predictability.Quantify.wcet matrix in
  let config =
    { Analysis.Wcet.icache =
        Analysis.Wcet.Cached_fetch
          { config = Predictability.Harness.icache_config;
            hit = Predictability.Harness.icache_hit;
            miss = Predictability.Harness.icache_miss };
      dmem =
        Analysis.Wcet.Range_data
          { best = Predictability.Harness.dcache_hit;
            worst = Predictability.Harness.dcache_miss };
      unroll = true; budget = None }
  in
  let ub = (Analysis.Wcet.bound config Analysis.Wcet.Upper ~shapes ~entry:"main").Analysis.Wcet.bound in
  let lb = (Analysis.Wcet.bound { config with unroll = false } Analysis.Wcet.Lower ~shapes ~entry:"main").Analysis.Wcet.bound in
  let summary = { Predictability.Measures.lb; bcet; wcet; ub } in
  Format.printf "%a@." Predictability.Measures.pp summary;
  Printf.printf "well-ordered (Figure 1 invariant): %b\n"
    (Predictability.Measures.well_ordered summary)
