(* Predictable DRAM controllers, side by side:

     dune exec examples/dram_latency.exe

   One victim client issues sparse requests while three co-runners stream;
   the conventional open-page FCFS controller, Predator (CCSP) and AMC
   (TDM) are compared on observed latency vs analytic bound. *)

let () =
  let timing = Dram.Timing.default in
  let clients = 4 in
  let victim =
    Dram.Traffic.random ~min_gap:150 ~client:0 ~banks:timing.Dram.Timing.banks
      ~rows:32 ~count:24 ~mean_gap:50 ~seed:7
  in
  let others =
    List.concat_map
      (fun c ->
         Dram.Traffic.streaming ~client:c ~banks:timing.Dram.Timing.banks
           ~count:64 ~period:10 0)
      [ 1; 2; 3 ]
  in
  Printf.printf "%-22s %8s %8s %8s %8s\n"
    "controller" "min" "mean" "max" "bound";
  List.iter
    (fun policy ->
       let config =
         { Dram.Controller.timing; policy;
           refresh = Dram.Controller.Distributed; refresh_phase = 0; clients }
       in
       let served = Dram.Controller.simulate config (victim @ others) in
       let latencies =
         List.filter_map
           (fun (s : Dram.Controller.served) ->
              if s.request.Dram.Controller.client = 0
              then Some (Dram.Controller.latency s)
              else None)
           served
       in
       let summary = Prelude.Stats.summarize_ints latencies in
       Printf.printf "%-22s %8.0f %8.1f %8.0f %8s\n"
         (Dram.Controller.policy_name policy)
         summary.Prelude.Stats.min summary.Prelude.Stats.mean
         summary.Prelude.Stats.max
         (match Dram.Controller.latency_bound config with
          | Some b -> string_of_int b
          | None -> "none"))
    [ Dram.Controller.Open_page_fcfs;
      Dram.Controller.Predator { burst = 2 };
      Dram.Controller.Amc ];
  print_endline "";
  print_endline "FCFS is fast on average but offers no bound independent of the";
  print_endline "co-runners; Predator and AMC trade mean latency for a guarantee."
