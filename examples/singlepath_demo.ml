(* The single-path transformation, before and after:

     dune exec examples/singlepath_demo.exe

   Shows the structured source of a branchy kernel, its if-converted
   single-path form, and the effect on per-input execution times. *)

let () =
  let w = Isa.Workload.clamp () in
  let sp = Singlepath.Transform.transform w in
  let show (label : string) (workload : Isa.Workload.t) =
    Printf.printf "--- %s ---\n" label;
    List.iter
      (fun (f : Isa.Ast.func) ->
         Format.printf "%s:@.%a@." f.Isa.Ast.name Isa.Ast.pp f.Isa.Ast.body)
      workload.Isa.Workload.funcs
  in
  show "original (branching)" w;
  print_newline ();
  show "single-path (if-converted)" sp;
  print_newline ();
  let machine = Pipeline.Inorder.state () in
  let program, _ = Isa.Workload.program w in
  let sp_program, _ = Isa.Workload.program sp in
  Printf.printf "%-10s %14s %16s %8s\n" "input r1" "time (branchy)" "time (1-path)" "results";
  List.iter
    (fun input ->
       let t = Pipeline.Inorder.time program machine input in
       let t_sp = Pipeline.Inorder.time sp_program machine input in
       let r =
         Isa.Exec.result_reg (Isa.Exec.run program input) Isa.Reg.r1
       in
       let r_sp =
         Isa.Exec.result_reg (Isa.Exec.run sp_program input) Isa.Reg.r1
       in
       let arg =
         match List.assoc_opt Isa.Reg.r1 input.Isa.Exec.regs with
         | Some v -> v
         | None -> 0
       in
       Printf.printf "%-10d %14d %16d %4d=%d\n" arg t t_sp r r_sp)
    w.Isa.Workload.inputs;
  print_endline "";
  print_endline "After the transformation every input takes the same number of";
  print_endline "cycles (IIPr = 1): timing no longer leaks the input."
