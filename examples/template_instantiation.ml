(* Instantiating the predictability template for a NEW property:

     dune exec examples/template_instantiation.exe

   The paper's template is not specific to execution time — any property of
   execution traces qualifies. This example defines "cache-miss
   predictability": the property is the number of data-cache misses of a
   run, the uncertainty sources are the initial cache state and the program
   input, and the quality measure is the min/max quotient, exactly as in
   Definition 3 but over a different trace property. *)

let dcache_config =
  { Cache.Set_assoc.sets = 4; ways = 2; line = 2; kind = Cache.Policy.Lru }

(* The property evaluator: replay a run's data accesses against a concrete
   cache state and count the misses. (Shifted by +1: the template's quotient
   needs positive values, and the paper's quality measure is a ratio of the
   property's extremes.) *)
let misses_plus_one program cache input =
  let outcome = Isa.Exec.run program input in
  let addresses =
    Array.to_list outcome.Isa.Exec.trace
    |> List.filter_map (fun (ev : Isa.Exec.event) -> ev.Isa.Exec.addr)
  in
  let _, misses, _ = Cache.Set_assoc.access_seq cache addresses in
  misses + 1

let () =
  let instance =
    { Predictability.Template.approach = "cache-miss predictability (this example)";
      hardware_unit = "data cache";
      property = "number of data-cache misses of a run";
      uncertainty = "initial cache state and program input";
      quality_measure = "min misses / max misses over Q x I";
      inherence = Predictability.Template.Inherent;
      experiment = "examples/template_instantiation.ml" }
  in
  Format.printf "%a@.@." Predictability.Template.pp_instance instance;
  let w = Isa.Workload.bubble_sort ~n:5 in
  let program, _ = Isa.Workload.program w in
  let universe = Predictability.Harness.data_universe w in
  let states =
    Cache.Set_assoc.state_samples dcache_config ~universe ~count:5 ~seed:0xce11
  in
  let matrix =
    Predictability.Quantify.evaluate ~states ~inputs:w.Isa.Workload.inputs
      ~time:(misses_plus_one program) ()
  in
  let pr = Predictability.Quantify.pr matrix in
  let sipr = Predictability.Quantify.sipr matrix in
  let iipr = Predictability.Quantify.iipr matrix in
  Printf.printf "workload: %s over %d states x %d inputs\n"
    w.Isa.Workload.name (List.length states) (List.length w.Isa.Workload.inputs);
  Printf.printf "misses range: [%d, %d] (shifted by +1 in the quotients)\n"
    (Predictability.Quantify.bcet matrix - 1)
    (Predictability.Quantify.wcet matrix - 1);
  Printf.printf "miss-count Pr   = %s\n" (Predictability.Harness.ratio_string pr);
  Printf.printf "state-induced   = %s\n" (Predictability.Harness.ratio_string sipr);
  Printf.printf "input-induced   = %s\n" (Predictability.Harness.ratio_string iipr);
  print_newline ();
  print_endline "The same quantifiers, joins and monotonicity laws apply to any";
  print_endline "trace property: the template separates WHAT is predicted from";
  print_endline "HOW well, and the inherence requirement (exhaustive extremes,";
  print_endline "not one analysis' output) carries over unchanged."
