(* Cache replacement policies and their inherent predictability:

     dune exec examples/cache_policy_zoo.exe

   Replays an access pattern on every policy, then computes the evict/fill
   metrics (Reineke et al.) by state-space exploration — the number of
   distinct accesses any analysis needs before it can bound the cache
   contents again, an inherent property of the policy. *)

let pattern =
  (* A loop over five blocks on a 4-way set: thrashes some policies. *)
  List.concat (List.init 6 (fun _ -> [ 0; 1; 2; 3; 4 ]))

let () =
  print_endline "Access pattern: (0 1 2 3 4) x 6 on one 4-way set";
  print_endline "";
  Printf.printf "%-6s %6s %6s\n" "policy" "hits" "misses";
  List.iter
    (fun kind ->
       let config =
         { Cache.Set_assoc.sets = 1; ways = 4; line = 1; kind }
       in
       let hits, misses, _ =
         Cache.Set_assoc.access_seq (Cache.Set_assoc.make config) pattern
       in
       Printf.printf "%-6s %6d %6d\n" (Cache.Policy.kind_name kind) hits misses)
    Cache.Policy.all_kinds;
  print_endline "";
  print_endline "Inherent predictability metrics (evict / fill horizons):";
  print_endline "  evict: distinct accesses until any unknown content is surely gone";
  print_endline "  fill:  distinct accesses until the state is exactly known";
  print_endline "";
  Printf.printf "%-6s %6s %6s %6s\n" "policy" "ways" "evict" "fill";
  List.iter
    (fun ways ->
       List.iter
         (fun kind ->
            let max_probes = (3 * ways) + 2 in
            let evict = Predictability.Cache_metrics.evict kind ~ways ~max_probes in
            let fill = Predictability.Cache_metrics.fill kind ~ways ~max_probes in
            Printf.printf "%-6s %6d %6s %6s\n"
              (Cache.Policy.kind_name kind) ways
              (Predictability.Cache_metrics.estimate_to_string evict)
              (Predictability.Cache_metrics.estimate_to_string fill))
         [ Cache.Policy.Lru; Cache.Policy.Fifo; Cache.Policy.Plru;
           Cache.Policy.Mru ])
    [ 2; 4 ];
  print_endline "";
  print_endline "LRU regains full knowledge fastest — the basis of the paper's";
  print_endline "recommendation (Wilhelm et al.) to use LRU in time-critical systems."
