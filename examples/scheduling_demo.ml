(* Static vs dynamic scheduling, the fourth classic predictability
   intuition from the paper's introduction:

     dune exec examples/scheduling_demo.exe

   Builds a cyclic-executive table for a small task set and contrasts the
   lowest-priority task's response times with preemptive fixed-priority
   scheduling, as the other tasks' demands vary. *)

let () =
  let tasks =
    [ Sched.Task.make ~name:"sensor" ~period:20 ~bcet:2 ~wcet:6 ~priority:0;
      Sched.Task.make ~name:"control" ~period:40 ~bcet:4 ~wcet:10 ~priority:1;
      Sched.Task.make ~name:"logger" ~period:80 ~bcet:9 ~wcet:9 ~priority:2 ]
  in
  let table = Sched.Cyclic.build tasks in
  print_endline "Cyclic executive table (one hyperperiod of 80):";
  List.iter
    (fun (w : Sched.Cyclic.window) ->
       Printf.printf "  t=%3d..%3d  %s (released %d)\n"
         w.Sched.Cyclic.start
         (w.Sched.Cyclic.start + w.Sched.Cyclic.task.Sched.Task.wcet)
         w.Sched.Cyclic.task.Sched.Task.name w.Sched.Cyclic.release)
    (Sched.Cyclic.windows table);
  print_newline ();
  Printf.printf "%-28s %20s %20s\n" "scenario" "logger resp (cyclic)"
    "logger resp (FP)";
  List.iter
    (fun (label, scenario) ->
       let show responses =
         String.concat ","
           (List.map string_of_int (List.assoc "logger" responses))
       in
       Printf.printf "%-28s %20s %20s\n" label
         (show (Sched.Cyclic.responses table scenario))
         (show (Sched.Fixed_priority.responses tasks scenario)))
    [ ("others at best case", Sched.Task.all_bcet);
      ("others at worst case", Sched.Task.all_wcet);
      ("random demands", Sched.Task.random_demand ~seed:42) ];
  print_newline ();
  print_endline "The cyclic executive answers with the same number every time:";
  print_endline "the logger's response does not depend on what the other tasks";
  print_endline "do. The preemptive scheduler is faster when the others are";
  print_endline "light - and that dependence is exactly the predictability cost."
