(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper: Figure 1, the
   Equation-4 series, every row of Tables 1 and 2, the related-work results,
   and the ablation studies — each printed with its reproduction checks and
   per-experiment instrumentation (wall clock, Q*I cells, kernel evals).

   Part 2 is the Bechamel microbenchmark suite: one [Test.make] per paper
   artefact, timing the computational kernel behind that experiment, so
   regressions in the simulators and analyses are visible.

   Part 3 demonstrates the parallel T_p(q,i) evaluation engine: the two
   heaviest exhaustive experiments (EXT.ATLAS and RW.CACHE) timed at jobs=1
   and jobs=N, with the results checked bit-identical. Pass [--jobs N] to
   override N (default: Domain.recommended_domain_count). *)

open Bechamel
open Toolkit

(* --- Part 2 fixtures: prepared outside the staged closures. ------------- *)

let fig1_fixture =
  let w = Isa.Workload.bubble_sort ~n:5 in
  let program, _ = Isa.Workload.program w in
  let state =
    match Predictability.Harness.inorder_states program w with
    | q :: _ -> q
    | [] -> assert false
  in
  let input = match w.Isa.Workload.inputs with i :: _ -> i | [] -> assert false in
  (program, state, input)

(* One shared fast-path engine: the benchmark measures the steady state
   (compiled trace + warm memo), which is what a Q*I sweep amortises to. *)
let fig1_fast_fixture =
  let program, _, _ = fig1_fixture in
  Fastpath.Engine.create program

(* Serve-daemon query cost: one request line through the wire format
   (parse, dispatch-shaped engine call, envelope, emit). The cached
   variant answers from the warm memo like a resident daemon; the
   uncached one recomputes the cell every time, the daemon's cold-start
   (or post-eviction) latency. *)
let serve_request_line =
  Prelude.Json.to_string
    (Serve.Protocol.request_to_json
       (Serve.Protocol.Eval { workload = "bubble_sort"; state = 0; input = 0 }))

let serve_unmemoized_fixture =
  let program, _, _ = fig1_fixture in
  Fastpath.Engine.create ~memo:false program

let serve_cell_query engine =
  let request =
    match
      Result.bind (Prelude.Json.parse serve_request_line)
        Serve.Protocol.request_of_json
    with
    | Ok (request, _) -> request
    | Error message -> failwith message
  in
  match request with
  | Serve.Protocol.Eval _ ->
    let _, state, input = fig1_fixture in
    let time = Fastpath.Engine.time engine state input in
    Prelude.Json.to_string
      (Serve.Protocol.ok ~op:"eval"
         (Prelude.Json.Obj [ ("time_cycles", Prelude.Json.Int time) ]))
  | _ -> assert false

(* Whole-daemon concurrent throughput: a resident worker pool (conns=4)
   serving 4 persistent clients over real sockets, one pipelined round of
   4 eval requests per run. Times the full stack — bounded frame reader,
   mutex-guarded shared engine, per-request counter aggregation — under
   genuine cross-connection concurrency, which cell_query_cached (in-
   process, single caller) cannot see. Lazy so `--only` runs that filter
   it out never start a daemon. The pool kernel is measured in its own
   second bechamel phase and the daemon is torn down eagerly right after
   (see run_microbenchmarks): the resident domains inflate every other
   kernel's stop-the-world GC syncs by 5-2000x if left alive during the
   main phase. The at_exit is a belt-and-braces fallback so the process
   never exits with a live domain. *)
let serve_pool_request =
  Serve.Protocol.request_to_json
    (Serve.Protocol.Eval { workload = "bubble_sort"; state = 0; input = 0 })

let serve_pool_cleanup = ref (fun () -> ())

let serve_pool_fixture =
  lazy
    (let socket =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "predlab-bench-%d.sock" (Unix.getpid ()))
     in
     let config =
       { Serve.Daemon.socket; jobs = 1; deadline_s = None;
         memo_bound = Serve.Daemon.default_memo_bound; conns = 4;
         queue = Serve.Daemon.default_queue; idle_s = None; drain_s = 2.;
         max_frame = Serve.Daemon.default_max_frame }
     in
     let daemon = Domain.spawn (fun () -> Serve.Daemon.run config) in
     let clients =
       List.init 4 (fun _ ->
           match Serve.Client.connect ~retry_for_s:5. socket with
           | Ok c -> c
           | Error m -> failwith ("bench: serve fixture connect: " ^ m))
     in
     let torn = ref false in
     serve_pool_cleanup :=
       (fun () ->
          if not !torn then begin
            torn := true;
            List.iter Serve.Client.close clients;
            (match Serve.Client.connect ~retry_for_s:1. socket with
             | Ok c ->
               ignore
                 (Serve.Client.request ~timeout_s:5. c
                    (Serve.Protocol.request_to_json Serve.Protocol.Shutdown));
               Serve.Client.close c
             | Error _ -> ());
            Domain.join daemon
          end);
     at_exit (fun () -> !serve_pool_cleanup ());
     clients)

let serve_pool_teardown () = !serve_pool_cleanup ()

let serve_concurrent_round () =
  let clients = Lazy.force serve_pool_fixture in
  List.iter
    (fun c ->
       match Serve.Client.send ~timeout_s:30. c serve_pool_request with
       | Ok () -> ()
       | Error e ->
         failwith ("bench: serve send: " ^ Serve.Client.error_message e))
    clients;
  List.iter
    (fun c ->
       match Serve.Client.recv ~timeout_s:30. c with
       | Ok _ -> ()
       | Error e ->
         failwith ("bench: serve recv: " ^ Serve.Client.error_message e))
    clients

let branch_fixture =
  let w = Isa.Workload.branchy ~n:16 in
  let program, _ = Isa.Workload.program w in
  let input = match w.Isa.Workload.inputs with i :: _ -> i | [] -> assert false in
  Pipeline.Trace_util.branch_events program (Isa.Exec.run program input)

let superscalar_fixture =
  let w = Predictability.Exp_superscalar.kernel_workload () in
  let program, _ = Isa.Workload.program w in
  let input = match w.Isa.Workload.inputs with i :: _ -> i | [] -> assert false in
  (program, Isa.Exec.run program input)

let outcome_of w =
  let program, _ = Isa.Workload.program w in
  let input = match w.Isa.Workload.inputs with i :: _ -> i | [] -> assert false in
  (program, Isa.Exec.run program input)

let smt_fixture =
  let _, rt = outcome_of (Isa.Workload.fir ~taps:2 ~samples:3) in
  let _, co = outcome_of (Isa.Workload.crc ~bits:10) in
  (rt, co)

let tdm_fixture =
  List.init 12 (fun i ->
      { Arbiter.Arbitration.client = i mod 4; arrival = i * 7; service = 4 })

let interleaved_fixture =
  let _, a = outcome_of (Isa.Workload.crc ~bits:8) in
  let _, b = outcome_of (Isa.Workload.max_array ~n:8) in
  [ a; b; a; b ]

let ooo_fixture = outcome_of (Isa.Workload.fir ~taps:3 ~samples:4)

let method_cache_fixture =
  let w = Isa.Workload.call_chain ~calls:4 ~rounds:6 in
  outcome_of w

let mustmay_fixture = List.init 64 (fun i -> (i mod 12) * 4)

let locking_fixture =
  let program, outcome = outcome_of (Isa.Workload.crc ~bits:10) in
  let cfg = { Cache.Set_assoc.sets = 2; ways = 2; line = 16; kind = Cache.Policy.Lru } in
  let blocks =
    Array.to_list outcome.Isa.Exec.trace
    |> List.map (fun (ev : Isa.Exec.event) ->
        Cache.Set_assoc.block_of_addr cfg (Isa.Program.instr_address program ev.pc))
  in
  let profile =
    List.map (fun b -> (b, 1)) (Prelude.Listx.uniq Stdlib.compare blocks)
  in
  (Cache.Locking.lock_greedy ~config:cfg ~profile, blocks)

let dram_fixture =
  let timing = Dram.Timing.default in
  let config =
    { Dram.Controller.timing; policy = Dram.Controller.Amc;
      refresh = Dram.Controller.Distributed; refresh_phase = 0; clients = 2 }
  in
  let requests =
    Dram.Traffic.streaming ~client:0 ~banks:timing.Dram.Timing.banks ~count:16
      ~period:30 0
    @ Dram.Traffic.streaming ~client:1 ~banks:timing.Dram.Timing.banks ~count:16
        ~period:30 3
  in
  (config, requests)

let singlepath_fixture = Isa.Workload.clamp ()

let wcet_fixture =
  let w = Isa.Workload.fir ~taps:3 ~samples:4 in
  let _, shapes = Isa.Workload.program w in
  shapes

(* Sampling kernels: a synthetic 32x32 cell space (pure arithmetic timer,
   so the estimator machinery — keyed substreams, stratified passes,
   bootstrap resampling, tail extrapolation — is what gets timed, not a
   simulator), plus the unbiased Rng.int rejection path at a worst-case
   bound and the bootstrap/tail stages in isolation. *)
let sampling_spec =
  { Sampling.Sampler.default with
    Sampling.Sampler.n_cells = 128; per_stratum = 8; resamples = 50 }

let sampling_time q i = 10 + (((q * 31) + (i * 17)) mod 13)

let sampling_samples = Array.init 256 (fun k -> 10 + (k * 29 mod 97))

(* Just under 3 * 2^60: about 1/3 of raw draws fall in the rejection zone,
   so this times the resample loop where the modulo bias used to hide. *)
let rejection_bound = (1 lsl 60) * 3 - 11

let wcet_config =
  { Analysis.Wcet.icache =
      Analysis.Wcet.Cached_fetch
        { config = Predictability.Harness.icache_config;
          hit = Predictability.Harness.icache_hit;
          miss = Predictability.Harness.icache_miss };
    dmem = Analysis.Wcet.Range_data { best = 1; worst = 8 };
    unroll = true; budget = None }

(* Each kernel records its evaluation engine ("exact" | "fast") and the
   worker-domain count its closure uses — both land in the per-kernel JSON
   (schema v2), so trajectory points are comparable like for like. Kernels
   that fan out on the default pool record the bench-wide [jobs]; everything
   else runs on the calling domain (jobs = 1). The three fast kernels keep
   the historical names — `predlab compare` then reports their speedup
   against the exact baseline — with `_exact` twins pinning the old path. *)
type kernel_spec = {
  k_name : string;
  k_engine : string;
  k_jobs : int;
  k_test : Test.t;
}

let kernel_specs jobs =
  let stage ?(engine = "exact") ?(kjobs = 1) name f =
    { k_name = "predlab/" ^ name; k_engine = engine; k_jobs = kjobs;
      k_test = Test.make ~name (Staged.stage f) }
  in
  [ stage ~engine:"fast" "FIG1/inorder_T(q,i)" (fun () ->
        let _, state, input = fig1_fixture in
        Fastpath.Engine.time fig1_fast_fixture state input);
    stage "FIG1/inorder_T(q,i)_exact" (fun () ->
        let program, state, input = fig1_fixture in
        Pipeline.Inorder.time program state input);
    stage ~engine:"fast" "SERVE/cell_query_cached" (fun () ->
        serve_cell_query fig1_fast_fixture);
    stage ~engine:"fast" "SERVE/cell_query_uncached" (fun () ->
        serve_cell_query serve_unmemoized_fixture);
    stage ~engine:"fast" ~kjobs:4 "SERVE/concurrent_throughput" (fun () ->
        serve_concurrent_round ());
    stage "EQ4/domino_kernel_n32" (fun () ->
        Predictability.Exp_eq4.time ~dispatch:Pipeline.Ooo.Greedy 32
          Predictability.Exp_eq4.q_primed);
    stage "TAB1.R1/two_bit_trace" (fun () ->
        Branchpred.Predictor.run
          (Branchpred.Predictor.two_bit ~entries:16 ~init:0) branch_fixture);
    stage "TAB1.R2/superscalar_run" (fun () ->
        let _, outcome = superscalar_fixture in
        Pipeline.Superscalar.run
          { Pipeline.Superscalar.width = 2; regulate = true } ~init:[] outcome);
    stage "TAB1.R3/smt_priority" (fun () ->
        let rt, co = smt_fixture in
        Pipeline.Smt.rt_time Pipeline.Smt.Rt_priority ~rt ~others:[ co ]);
    stage "TAB1.R4/tdm_link" (fun () ->
        Arbiter.Arbitration.simulate (Arbiter.Arbitration.Tdm { slot = 4 })
          ~clients:4 tdm_fixture);
    stage "TAB1.R5/interleaved" (fun () ->
        Pipeline.Interleaved.run ~threads:interleaved_fixture);
    stage "TAB1.R6/ooo_virtual_traces" (fun () ->
        let program, outcome = ooo_fixture in
        Pipeline.Ooo.run_trace
          (Pipeline.Ooo.trace_config ~virtual_traces:true ~constant_ops:true ())
          ~init:(0, 0) program outcome);
    stage "TAB1.R7/ooo_greedy_trace" (fun () ->
        let program, outcome = ooo_fixture in
        Pipeline.Ooo.run_trace (Pipeline.Ooo.trace_config ()) ~init:(0, 0)
          program outcome);
    stage "TAB2.R1/method_cache_replay" (fun () ->
        let program, outcome = method_cache_fixture in
        let cache = ref (Cache.Method_cache.make { blocks = 8; block_size = 8 }) in
        Array.iter
          (fun (ev : Isa.Exec.event) ->
             match ev.Isa.Exec.ins with
             | Isa.Instr.Call callee ->
               let size =
                 match List.assoc_opt callee (Isa.Program.functions program) with
                 | Some (_, len) -> len
                 | None -> 1
               in
               let _, c = Cache.Method_cache.request !cache ~name:callee ~size in
               cache := c
             | _ -> ())
          outcome.Isa.Exec.trace);
    stage "TAB2.R2/must_may_stream" (fun () ->
        let a =
          ref (Analysis.Must_may.unknown
                 { Cache.Set_assoc.sets = 4; ways = 2; line = 2;
                   kind = Cache.Policy.Lru })
        in
        List.iter (fun addr -> a := Analysis.Must_may.access !a addr)
          mustmay_fixture);
    stage "TAB2.R3/locking_hits" (fun () ->
        let locking, blocks = locking_fixture in
        Cache.Locking.hits locking blocks);
    stage "TAB2.R4/dram_amc" (fun () ->
        let config, requests = dram_fixture in
        Dram.Controller.simulate config requests);
    stage "TAB2.R5/refresh_windows" (fun () ->
        let config, _ = dram_fixture in
        Dram.Controller.refresh_windows config ~horizon:100000);
    stage "TAB2.R6/singlepath_transform" (fun () ->
        Singlepath.Transform.transform singlepath_fixture);
    stage ~engine:"fast" "RW.CACHE/evict_lru4" (fun () ->
        Predictability.Cache_metrics.evict ~engine:`Fast Cache.Policy.Lru
          ~ways:4 ~max_probes:6);
    stage ~kjobs:jobs "RW.CACHE/evict_lru4_exact" (fun () ->
        Predictability.Cache_metrics.evict Cache.Policy.Lru ~ways:4 ~max_probes:6);
    stage "DEF.SAMPLE/sampler_run" (fun () ->
        Sampling.Sampler.run ~jobs:1 ~spec:sampling_spec ~n_states:32
          ~n_inputs:32 ~time:sampling_time ());
    stage "DEF.SAMPLE/bootstrap_mean_ci" (fun () ->
        Sampling.Estimate.bootstrap ~rng:(Prelude.Rng.make 11) ~resamples:50
          ~confidence:0.99
          ~stat:(fun a ->
              float_of_int (Array.fold_left ( + ) 0 a)
              /. float_of_int (Array.length a))
          sampling_samples);
    stage "DEF.SAMPLE/tail_extrapolate" (fun () ->
        Sampling.Tail.estimate ~rng:(Prelude.Rng.make 12) ~resamples:50
          ~confidence:0.99 ~tail_fraction:0.25 ~exceed_p:0.001
          Sampling.Tail.Upper sampling_samples);
    stage "DEF.SAMPLE/rng_int_rejection" (fun () ->
        let rng = Prelude.Rng.make 13 in
        let acc = ref 0 in
        for _ = 1 to 64 do
          acc := !acc lxor Prelude.Rng.int rng rejection_bound
        done;
        !acc);
    stage "CERT/taint_analyze" (fun () ->
        Dataflow.Taint.of_workload singlepath_fixture);
    stage "CERT/certify_flat" (fun () ->
        Analysis.Certify.certify Predictability.Certifier.flat_machine
          singlepath_fixture);
    stage "CERT/certify_cached" (fun () ->
        Analysis.Certify.certify Predictability.Certifier.cached_machine
          singlepath_fixture);
    stage "RW.DYN/width_profile" (fun () ->
        Predictability.Dynamical.width_profile
          ~f:(Predictability.Dynamical.logistic ~r:4.0) ~x0:0.237 ~delta:1e-4
          ~steps:16);
    stage "RW.ANOMALY/delayed_start" (fun () ->
        Predictability.Exp_eq4.time ~dispatch:Pipeline.Ooo.Greedy 16 (1, 0));
    stage "ABLATE/wcet_bound" (fun () ->
        Analysis.Wcet.bound wcet_config Analysis.Wcet.Upper ~shapes:wcet_fixture
          ~entry:"main");
    stage "EXT.COMP/interval_bound" (fun () ->
        Predictability.Composition.sequential_pr
          [ Predictability.Composition.component ~label:"a" ~bcet:70 ~wcet:124;
            Predictability.Composition.component ~label:"b" ~bcet:88 ~wcet:142;
            Predictability.Composition.component ~label:"c" ~bcet:124 ~wcet:152 ]);
    stage ~engine:"fast" "EXT.EXTENT/profile" (fun () ->
        Predictability.Extent.profile ~engine:`Fast ~states:[ 0; 1; 2 ]
          ~inputs:[ 0; 1; 2; 3 ]
          ~time:(fun q i -> 10 + q + (2 * i))
          ~cuts:[ ("a", 1, 1); ("b", 2, 2); ("c", 3, 4) ] ());
    stage ~kjobs:jobs "EXT.EXTENT/profile_exact" (fun () ->
        Predictability.Extent.profile ~states:[ 0; 1; 2 ] ~inputs:[ 0; 1; 2; 3 ]
          ~time:(fun q i -> 10 + q + (2 * i))
          ~cuts:[ ("a", 1, 1); ("b", 2, 2); ("c", 3, 4) ] ());
    stage "EXT.SCHED/fp_hyperperiod" (fun () ->
        Sched.Fixed_priority.responses
          [ Sched.Task.make ~name:"hi" ~period:20 ~bcet:2 ~wcet:6 ~priority:0;
            Sched.Task.make ~name:"mid" ~period:40 ~bcet:4 ~wcet:10 ~priority:1;
            Sched.Task.make ~name:"victim" ~period:80 ~bcet:9 ~wcet:9 ~priority:2 ]
          Sched.Task.all_wcet);
    stage "EXT.BUS/tdm_multicore" (fun () ->
        let core =
          List.concat
            (List.init 8 (fun _ ->
                 [ Pipeline.Multicore.Compute 2; Pipeline.Multicore.Mem ]))
        in
        Pipeline.Multicore.run ~policy:(Pipeline.Multicore.Bus_tdm { slot = 4 })
          ~service:4 [ core; core; core ]);
    stage "EXT.BUDGET/bounded_wcet" (fun () ->
        Analysis.Wcet.bound { wcet_config with Analysis.Wcet.budget = Some 1 }
          Analysis.Wcet.Upper ~shapes:wcet_fixture ~entry:"main") ]

let run_microbenchmarks ?only jobs =
  print_endline "--- Part 2: Bechamel microbenchmarks (ns per run) ---";
  let specs = kernel_specs jobs in
  let specs =
    match only with
    | None -> specs
    | Some substr ->
      (* Substring filter (bench --only SUBSTR): run just the matching
         kernels, e.g. `--only DEF.SAMPLE` as a CI smoke of the sampling
         kernels without the full suite. *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i =
          i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
        in
        nn = 0 || at 0
      in
      let matching =
        List.filter (fun k -> contains k.k_name substr) specs
      in
      if matching = [] then begin
        Printf.eprintf "bench: --only %s matches no kernel\n" substr;
        exit 2
      end;
      matching
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.2) ~kde:None
      ~stabilize:false ()
  in
  let measure specs =
    if specs = [] then []
    else
      let grouped =
        Test.make_grouped ~name:"predlab" (List.map (fun k -> k.k_test) specs)
      in
      let raw = Benchmark.all cfg instances grouped in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name ols_result acc -> (name, ols_result) :: acc)
        results []
  in
  (* The resident serve pool (daemon + worker domains) inflates every
     other kernel's stop-the-world GC syncs, so the pool kernel gets its
     own second phase and the daemon is torn down before returning.
     Explicit lets: [@] evaluates right to left and would measure the
     pool phase first, polluting the main phase it was split from. *)
  let pool_specs, main_specs =
    List.partition
      (fun k -> k.k_name = "predlab/SERVE/concurrent_throughput")
      specs
  in
  let main_rows = measure main_specs in
  let pool_rows = measure pool_specs in
  serve_pool_teardown ();
  let rows = main_rows @ pool_rows in
  let kernels =
    List.map
      (fun spec ->
         let estimate =
           match List.assoc_opt spec.k_name rows with
           | Some ols_result -> (
               match Analyze.OLS.estimates ols_result with
               | Some (v :: _) -> Some v
               | Some [] | None -> None)
           | None -> None
         in
         (spec, estimate))
      (List.sort (fun a b -> Stdlib.compare a.k_name b.k_name) specs)
  in
  List.iter
    (fun (spec, estimate) ->
       let text =
         match estimate with
         | Some v -> Printf.sprintf "%12.1f" v
         | None -> "      (n/a)"
       in
       Printf.printf "%-44s %s ns/run  [%s, jobs=%d]\n" spec.k_name text
         spec.k_engine spec.k_jobs)
    kernels;
  kernels

(* --- Part 3: parallel-engine speedup on the exhaustive experiments. ----- *)

let time_run f =
  let started = Prelude.Mono.now () in
  let v = f () in
  (v, Prelude.Mono.now () -. started)

type speedup = {
  case : string;
  seq_s : float;
  par_s : float;
  par_jobs : int;
  bit_identical : bool;
}

let run_speedup_suite jobs =
  Printf.printf
    "--- Part 3: parallel evaluation engine (jobs=1 vs jobs=%d) ---\n" jobs;
  let cases =
    [ ("ext_atlas", fun () -> Predictability.Exp_atlas.run ());
      ("rw_cache_metrics", fun () -> Predictability.Exp_cache_metrics.run ()) ]
  in
  let speedups =
    List.map
      (fun (name, runner) ->
         Prelude.Parallel.set_default_jobs 1;
         let seq_outcome, seq_s = time_run runner in
         Prelude.Parallel.set_default_jobs jobs;
         let par_outcome, par_s = time_run runner in
         let record =
           { case = name; seq_s; par_s; par_jobs = jobs;
             bit_identical = seq_outcome = par_outcome }
         in
         Printf.printf
           "%-20s jobs=1: %.3fs   jobs=%d: %.3fs   speedup: %.2fx   \
            bit-identical: %b\n%!"
           name seq_s jobs par_s
           (if par_s > 0. then seq_s /. par_s else Float.infinity)
           record.bit_identical;
         record)
      cases
  in
  Prelude.Parallel.set_default_jobs jobs;
  speedups

(* --- The BENCH_<n>.json trajectory point (--json FILE). ----------------- *)

let speedup_to_json s =
  Prelude.Json.Obj
    [ ("name", Prelude.Json.String s.case);
      ("seq_s", Prelude.Json.Float s.seq_s);
      ("par_s", Prelude.Json.Float s.par_s);
      ("jobs", Prelude.Json.Int s.par_jobs);
      ("speedup",
       if s.par_s > 0. then Prelude.Json.Float (s.seq_s /. s.par_s)
       else Prelude.Json.Null);
      ("bit_identical", Prelude.Json.Bool s.bit_identical) ]

let kernel_to_json (spec, estimate) =
  Prelude.Json.Obj
    [ ("name", Prelude.Json.String spec.k_name);
      ("engine", Prelude.Json.String spec.k_engine);
      ("jobs", Prelude.Json.Int spec.k_jobs);
      ("ns_per_run",
       match estimate with
       | Some ns -> Prelude.Json.Float ns
       | None -> Prelude.Json.Null) ]

(* Schema v2 (v1 + per-kernel "engine"/"jobs"); `predlab compare` accepts
   both, so v2 trajectory points still diff against the v1 baseline. *)
let bench_json ~jobs ~elapsed_s ~results ~speedups ~kernels =
  Prelude.Json.Obj
    [ ("schema", Prelude.Json.String "predlab/bench");
      ("version", Prelude.Json.Int 2);
      ("jobs", Prelude.Json.Int jobs);
      ("elapsed_s", Prelude.Json.Float elapsed_s);
      ("wall_sum_s",
       Prelude.Json.Float (Predictability.Experiments.wall_sum results));
      ("experiments", Predictability.Experiments.results_to_json results);
      ("kernels", Prelude.Json.List (List.map kernel_to_json kernels));
      ("speedups", Prelude.Json.List (List.map speedup_to_json speedups)) ]

let parse_args () =
  let jobs = ref (Prelude.Parallel.recommended_jobs ()) in
  let json_file = ref "" in
  let only = ref "" in
  let args =
    [ ("--jobs", Arg.Set_int jobs,
       "N  worker domains for Part 3 (default: recommended_domain_count)");
      ("--json", Arg.Set_string json_file,
       "FILE  also write the whole run as a machine-readable trajectory \
        point (BENCH_<n>.json; schema predlab/bench, the baseline format \
        of `predlab compare`)");
      ("--only", Arg.Set_string only,
       "SUBSTR  run only the Part 2 microbenchmark kernels whose name \
        contains SUBSTR, skipping Parts 1 and 3 (not combinable with \
        --json: a filtered run is not a trajectory point)") ]
  in
  Arg.parse args
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "bench [--jobs N] [--json FILE] [--only SUBSTR]";
  if !only <> "" && !json_file <> "" then begin
    prerr_endline "bench: --only and --json are mutually exclusive";
    exit 2
  end;
  (Stdlib.max 1 !jobs,
   (if !json_file = "" then None else Some !json_file),
   if !only = "" then None else Some !only)

let () =
  let jobs, json_file, only = parse_args () in
  (match only with
   | Some substr ->
     ignore (run_microbenchmarks ~only:substr jobs);
     exit 0
   | None -> ());
  let started = Prelude.Mono.now () in
  print_endline "=== Predlab benchmark harness ===";
  print_endline "--- Part 1: regenerate every figure and table of the paper ---";
  print_newline ();
  print_endline "Survey casting (paper Tables 1 and 2 as template instances):";
  print_string (Predictability.Survey.render Predictability.Survey.table1);
  print_string (Predictability.Survey.render Predictability.Survey.table2);
  print_newline ();
  let results = Predictability.Experiments.run_all ~jobs () in
  List.iter
    (fun { Predictability.Experiments.outcome; timing } ->
       print_string (Predictability.Report.render outcome);
       Printf.printf "  [%s]\n" (Predictability.Report.timing_string timing);
       print_newline ())
    results;
  let failed =
    List.filter
      (fun r ->
         not (Predictability.Report.all_passed
                r.Predictability.Experiments.outcome))
      results
  in
  Printf.printf "Reproduction summary: %d/%d experiments passed all checks\n\n"
    (List.length results - List.length failed)
    (List.length results);
  let speedups = run_speedup_suite jobs in
  print_newline ();
  let kernels = run_microbenchmarks jobs in
  (* Fast-engine gate: benchmarking with the fast path is only meaningful
     while the FIG1.FAST equivalence oracle holds — a fast kernel without a
     passing oracle in the same run is an unvalidated number. *)
  let fast_gate_ok =
    (not (List.exists (fun (spec, _) -> spec.k_engine = "fast") kernels))
    || List.exists
         (fun r ->
            r.Predictability.Experiments.outcome.Predictability.Report.id
            = "FIG1.FAST"
            && Predictability.Report.all_passed
                 r.Predictability.Experiments.outcome)
         results
  in
  if not fast_gate_ok then
    prerr_endline
      "bench: fast-engine kernels present but FIG1.FAST is absent or \
       failing in this run";
  (match json_file with
   | None -> ()
   | Some path ->
     let elapsed_s = Prelude.Mono.now () -. started in
     let doc = bench_json ~jobs ~elapsed_s ~results ~speedups ~kernels in
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc (Prelude.Json.to_string_pretty doc));
     Printf.printf "wrote %s\n" path);
  if failed <> [] || not fast_gate_ok then exit 1
