(* predlab — command-line front end to the predictability laboratory:
   list/run the experiments that reproduce the paper's figures and tables,
   and print the survey tables. *)

let list_experiments () =
  List.iter
    (fun (id, title, _) -> Printf.printf "%-10s %s\n" id title)
    Predictability.Experiments.all

let run_one id =
  match
    List.find_opt (fun (candidate, _, _) -> candidate = id)
      Predictability.Experiments.all
  with
  | None ->
    Printf.eprintf "unknown experiment %S; try `predlab list`\n" id;
    exit 2
  | Some (_, _, runner) ->
    let outcome = runner () in
    print_string (Predictability.Report.render outcome);
    if not (Predictability.Report.all_passed outcome) then exit 1

let run_all () =
  let outcomes = Predictability.Experiments.run_all () in
  List.iter (fun o -> print_string (Predictability.Report.render o); print_newline ()) outcomes;
  let failed =
    List.filter (fun o -> not (Predictability.Report.all_passed o)) outcomes
  in
  Printf.printf "%d/%d experiments fully passed their checks\n"
    (List.length outcomes - List.length failed) (List.length outcomes);
  if failed <> [] then exit 1

let list_workloads () =
  List.iter
    (fun (name, make) ->
       let w = make () in
       Printf.printf "%-16s %s (%d inputs)\n" name
         w.Isa.Workload.description
         (List.length w.Isa.Workload.inputs))
    Isa.Workload.registry

let show_program name =
  match List.assoc_opt name Isa.Workload.registry with
  | None ->
    Printf.eprintf "unknown workload %S; try `predlab workloads`\n" name;
    exit 2
  | Some make ->
    let w = make () in
    let program, _ = Isa.Workload.program w in
    Printf.printf "; %s — %s\n" w.Isa.Workload.name w.Isa.Workload.description;
    Format.printf "%a@." Isa.Program.pp program;
    Printf.printf "; %d instructions, %d admissible inputs\n"
      (Isa.Program.length program)
      (List.length w.Isa.Workload.inputs)

let survey () =
  print_endline "Table 1: constructive approaches to predictability (part I)";
  print_string (Predictability.Survey.render Predictability.Survey.table1);
  print_newline ();
  print_endline "Table 2: constructive approaches to predictability (part II)";
  print_string (Predictability.Survey.render Predictability.Survey.table2)

open Cmdliner

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List all experiments")
    Term.(const list_experiments $ const ())

let run_cmd =
  let id =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id (see `predlab list`)")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment and print its report")
    Term.(const run_one $ id)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run_all $ const ())

let survey_cmd =
  Cmd.v (Cmd.info "survey" ~doc:"Print the paper's Tables 1 and 2 as template instances")
    Term.(const survey $ const ())

let workloads_cmd =
  Cmd.v (Cmd.info "workloads" ~doc:"List the registered workload programs")
    Term.(const list_workloads $ const ())

let program_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see `predlab workloads`)")
  in
  Cmd.v (Cmd.info "program" ~doc:"Disassemble a workload's compiled program")
    Term.(const show_program $ workload_arg)

let main =
  Cmd.group
    (Cmd.info "predlab" ~version:"1.0.0"
       ~doc:"Predictability laboratory: reproduction of Grund, Reineke & \
             Wilhelm, 'A Template for Predictability Definitions with \
             Supporting Evidence' (PPES 2011)")
    [ list_cmd; run_cmd; all_cmd; survey_cmd; workloads_cmd; program_cmd ]

let () = exit (Cmd.eval main)
