(* predlab — command-line front end to the predictability laboratory:
   list/run the experiments that reproduce the paper's figures and tables,
   print the survey tables, and summarise per-experiment cost. *)

let list_experiments () =
  List.iter
    (fun (id, title, _) -> Printf.printf "%-10s %s\n" id title)
    Predictability.Experiments.all

let apply_jobs jobs = Prelude.Parallel.set_default_jobs jobs

let run_one jobs id =
  apply_jobs jobs;
  match Predictability.Experiments.lookup id with
  | Error message ->
    Printf.eprintf "%s\n" message;
    exit 2
  | Ok _ ->
    let { Predictability.Experiments.outcome; timing } =
      Predictability.Experiments.run_timed id
    in
    print_string (Predictability.Report.render outcome);
    Printf.printf "  [%s]\n" (Predictability.Report.timing_string timing);
    if not (Predictability.Report.all_passed outcome) then exit 1

let print_results results =
  List.iter
    (fun { Predictability.Experiments.outcome; timing } ->
       print_string (Predictability.Report.render outcome);
       Printf.printf "  [%s]\n" (Predictability.Report.timing_string timing);
       print_newline ())
    results

let run_all jobs =
  apply_jobs jobs;
  let results = Predictability.Experiments.run_all ~jobs () in
  print_results results;
  let failed =
    List.filter
      (fun r ->
         not (Predictability.Report.all_passed
                r.Predictability.Experiments.outcome))
      results
  in
  Printf.printf "%d/%d experiments fully passed their checks (jobs=%d)\n"
    (List.length results - List.length failed) (List.length results) jobs;
  if failed <> [] then exit 1

let stats jobs =
  apply_jobs jobs;
  let results = Predictability.Experiments.run_all ~jobs () in
  let table =
    Prelude.Table.make
      ~header:[ "experiment"; "wall s"; "Q*I cells"; "kernel evals"; "checks" ]
  in
  let total_wall = ref 0. and total_cells = ref 0 and total_evals = ref 0 in
  List.iter
    (fun { Predictability.Experiments.outcome; timing } ->
       total_wall := !total_wall +. timing.Predictability.Report.wall_s;
       total_cells := !total_cells + timing.Predictability.Report.cells;
       total_evals := !total_evals + timing.Predictability.Report.evals;
       let checks = outcome.Predictability.Report.checks in
       let passed =
         List.length
           (List.filter (fun c -> c.Predictability.Report.passed) checks)
       in
       Prelude.Table.add_row table
         [ outcome.Predictability.Report.id;
           Printf.sprintf "%.3f" timing.Predictability.Report.wall_s;
           string_of_int timing.Predictability.Report.cells;
           string_of_int timing.Predictability.Report.evals;
           Printf.sprintf "%d/%d" passed (List.length checks) ])
    results;
  Prelude.Table.add_separator table;
  Prelude.Table.add_row table
    [ "total"; Printf.sprintf "%.3f" !total_wall; string_of_int !total_cells;
      string_of_int !total_evals; "" ];
  print_string (Prelude.Table.render table);
  Printf.printf "jobs=%d (recommended on this machine: %d)\n" jobs
    (Prelude.Parallel.recommended_jobs ());
  let all_ok =
    List.for_all
      (fun r ->
         Predictability.Report.all_passed r.Predictability.Experiments.outcome)
      results
  in
  if not all_ok then exit 1

let list_workloads () =
  List.iter
    (fun (name, make) ->
       let w = make () in
       Printf.printf "%-16s %s (%d inputs)\n" name
         w.Isa.Workload.description
         (List.length w.Isa.Workload.inputs))
    Isa.Workload.registry

let show_program name =
  match List.assoc_opt name Isa.Workload.registry with
  | None ->
    Printf.eprintf "unknown workload %S; try `predlab workloads`\n" name;
    exit 2
  | Some make ->
    let w = make () in
    let program, _ = Isa.Workload.program w in
    Printf.printf "; %s — %s\n" w.Isa.Workload.name w.Isa.Workload.description;
    Format.printf "%a@." Isa.Program.pp program;
    Printf.printf "; %d instructions, %d admissible inputs\n"
      (Isa.Program.length program)
      (List.length w.Isa.Workload.inputs)

let survey () =
  print_endline "Table 1: constructive approaches to predictability (part I)";
  print_string (Predictability.Survey.render Predictability.Survey.table1);
  print_newline ();
  print_endline "Table 2: constructive approaches to predictability (part II)";
  print_string (Predictability.Survey.render Predictability.Survey.table2)

open Cmdliner

let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "%d is not a positive job count" n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let jobs_arg =
  Arg.(value
       & opt positive_int (Prelude.Parallel.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the parallel evaluation engine \
                 (default: Domain.recommended_domain_count). Results are \
                 bit-identical for any value.")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List all experiments")
    Term.(const list_experiments $ const ())

let run_cmd =
  let id =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id (see `predlab list`)")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment and print its report")
    Term.(const run_one $ jobs_arg $ id)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run_all $ jobs_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run every experiment and print a per-experiment cost summary \
             (wall-clock, Q*I matrix cells, kernel evaluations)")
    Term.(const stats $ jobs_arg)

let survey_cmd =
  Cmd.v (Cmd.info "survey" ~doc:"Print the paper's Tables 1 and 2 as template instances")
    Term.(const survey $ const ())

let workloads_cmd =
  Cmd.v (Cmd.info "workloads" ~doc:"List the registered workload programs")
    Term.(const list_workloads $ const ())

let program_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see `predlab workloads`)")
  in
  Cmd.v (Cmd.info "program" ~doc:"Disassemble a workload's compiled program")
    Term.(const show_program $ workload_arg)

let main =
  Cmd.group
    (Cmd.info "predlab" ~version:"1.0.0"
       ~doc:"Predictability laboratory: reproduction of Grund, Reineke & \
             Wilhelm, 'A Template for Predictability Definitions with \
             Supporting Evidence' (PPES 2011)")
    [ list_cmd; run_cmd; all_cmd; stats_cmd; survey_cmd; workloads_cmd;
      program_cmd ]

let () = exit (Cmd.eval main)
