(* predlab — command-line front end to the predictability laboratory:
   list/run the experiments that reproduce the paper's figures and tables,
   print the survey tables, summarise per-experiment cost, and diff two
   machine-readable reports as a regression gate. *)

type format = Text | Json

let list_experiments () =
  List.iter
    (fun (id, title, _) -> Printf.printf "%-10s %s\n" id title)
    Predictability.Experiments.all

let apply_jobs jobs = Prelude.Parallel.set_default_jobs jobs

let print_json_report ~jobs ~elapsed_s results =
  print_string
    (Prelude.Json.to_string_pretty
       (Predictability.Experiments.to_json ~jobs ~elapsed_s results))

let exit_on_failures results =
  let failed =
    List.filter
      (fun r ->
         not (Predictability.Report.all_passed
                r.Predictability.Experiments.outcome))
      results
  in
  if failed <> [] then exit 1

let run_one jobs format id =
  apply_jobs jobs;
  match Predictability.Experiments.lookup id with
  | Error message ->
    Printf.eprintf "%s\n" message;
    exit 2
  | Ok _ ->
    let result, elapsed_s =
      Predictability.Harness.elapsed (fun () ->
          Predictability.Experiments.run_timed id)
    in
    (match format with
     | Text ->
       print_string (Predictability.Report.render
                       result.Predictability.Experiments.outcome);
       Printf.printf "  [%s]\n"
         (Predictability.Report.timing_string
            result.Predictability.Experiments.timing)
     | Json -> print_json_report ~jobs ~elapsed_s [ result ]);
    exit_on_failures [ result ]

let print_results results =
  List.iter
    (fun { Predictability.Experiments.outcome; timing } ->
       print_string (Predictability.Report.render outcome);
       Printf.printf "  [%s]\n" (Predictability.Report.timing_string timing);
       print_newline ())
    results

let run_all jobs format =
  apply_jobs jobs;
  let results, elapsed_s =
    Predictability.Harness.elapsed (fun () ->
        Predictability.Experiments.run_all ~jobs ())
  in
  (match format with
   | Text ->
     print_results results;
     let failed =
       List.filter
         (fun r ->
            not (Predictability.Report.all_passed
                   r.Predictability.Experiments.outcome))
         results
     in
     Printf.printf "%d/%d experiments fully passed their checks (jobs=%d)\n"
       (List.length results - List.length failed) (List.length results) jobs
   | Json -> print_json_report ~jobs ~elapsed_s results);
  exit_on_failures results

let stats jobs format =
  apply_jobs jobs;
  let results, elapsed_s =
    Predictability.Harness.elapsed (fun () ->
        Predictability.Experiments.run_all ~jobs ())
  in
  (match format with
   | Json -> print_json_report ~jobs ~elapsed_s results
   | Text ->
     let table =
       Prelude.Table.make
         ~header:[ "experiment"; "wall s"; "Q*I cells"; "kernel evals";
                   "checks" ]
     in
     let total_cells = ref 0 and total_evals = ref 0 in
     List.iter
       (fun { Predictability.Experiments.outcome; timing } ->
          total_cells := !total_cells + timing.Predictability.Report.cells;
          total_evals := !total_evals + timing.Predictability.Report.evals;
          let checks = outcome.Predictability.Report.checks in
          let passed =
            List.length
              (List.filter (fun c -> c.Predictability.Report.passed) checks)
          in
          Prelude.Table.add_row table
            [ outcome.Predictability.Report.id;
              Printf.sprintf "%.3f" timing.Predictability.Report.wall_s;
              string_of_int timing.Predictability.Report.cells;
              string_of_int timing.Predictability.Report.evals;
              Printf.sprintf "%d/%d" passed (List.length checks) ])
       results;
     let wall_sum = Predictability.Experiments.wall_sum results in
     Prelude.Table.add_separator table;
     (* Two totals on purpose: per-experiment walls overlap under jobs>1, so
        their sum is CPU-time-flavoured; elapsed is the true wall clock. *)
     Prelude.Table.add_row table
       [ "sum"; Printf.sprintf "%.3f" wall_sum; string_of_int !total_cells;
         string_of_int !total_evals; "" ];
     Prelude.Table.add_row table
       [ "elapsed"; Printf.sprintf "%.3f" elapsed_s; ""; ""; "" ];
     print_string (Prelude.Table.render table);
     Printf.printf
       "sum = per-experiment wall added up (runs overlap under jobs>1); \
        elapsed = true wall clock\n";
     Printf.printf "jobs=%d (recommended on this machine: %d)\n" jobs
       (Prelude.Parallel.recommended_jobs ()));
  exit_on_failures results

let read_json_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error message ->
    Printf.eprintf "predlab compare: %s\n" message;
    exit 2
  | contents -> (
      match Prelude.Json.parse contents with
      | Ok json -> json
      | Error message ->
        Printf.eprintf "predlab compare: %s: %s\n" path message;
        exit 2)

let compare_reports tolerance baseline_path current_path =
  let baseline = read_json_file baseline_path in
  let current = read_json_file current_path in
  match
    Predictability.Regression.compare_reports ~tolerance_pct:tolerance
      ~baseline ~current ()
  with
  | exception Invalid_argument message ->
    Printf.eprintf "predlab compare: %s\n" message;
    exit 2
  | [] ->
    Printf.printf "OK: %s is no worse than %s (tolerance %.0f%%)\n"
      current_path baseline_path tolerance
  | findings ->
    List.iter
      (fun f ->
         Printf.printf "%s\n" (Predictability.Regression.finding_string f))
      findings;
    Printf.printf "%d regression finding(s) comparing %s against %s\n"
      (List.length findings) current_path baseline_path;
    exit 1

let list_workloads () =
  List.iter
    (fun (name, make) ->
       let w = make () in
       Printf.printf "%-16s %s (%d inputs)\n" name
         w.Isa.Workload.description
         (List.length w.Isa.Workload.inputs))
    Isa.Workload.registry

let show_program name =
  match List.assoc_opt name Isa.Workload.registry with
  | None ->
    Printf.eprintf "unknown workload %S; try `predlab workloads`\n" name;
    exit 2
  | Some make ->
    let w = make () in
    let program, _ = Isa.Workload.program w in
    Printf.printf "; %s — %s\n" w.Isa.Workload.name w.Isa.Workload.description;
    Format.printf "%a@." Isa.Program.pp program;
    Printf.printf "; %d instructions, %d admissible inputs\n"
      (Isa.Program.length program)
      (List.length w.Isa.Workload.inputs)

(* `predlab lint`: run the dataflow linter over workloads (default: the
   whole registry) or one of the pinned fixtures. Exit 1 iff any
   error-severity finding is reported — the ci.sh gate. *)
let lint format fixture names =
  let targets =
    match fixture with
    | Some `Clean ->
      let program, shapes = Dataflow.Fixtures.clean () in
      [ ("fixture:clean",
         Dataflow.Lint.check_program program @ Dataflow.Lint.check_shapes shapes) ]
    | Some `Dirty ->
      [ ("fixture:dirty", Dataflow.Lint.check_program (Dataflow.Fixtures.dirty ())) ]
    | None ->
      let selected =
        match names with
        | [] -> Isa.Workload.registry
        | names ->
          List.map
            (fun name ->
               match List.assoc_opt name Isa.Workload.registry with
               | Some make -> (name, make)
               | None ->
                 Printf.eprintf
                   "unknown workload %S; try `predlab workloads`\n" name;
                 exit 2)
            names
      in
      List.map
        (fun (name, make) -> (name, Dataflow.Lint.check_workload (make ())))
        selected
  in
  let total_errors =
    List.fold_left (fun acc (_, fs) -> acc + Dataflow.Lint.errors fs) 0 targets
  in
  (match format with
   | Json ->
     print_endline
       (Prelude.Json.to_string_pretty (Dataflow.Lint.report_to_json targets))
   | Text ->
     List.iter
       (fun (name, findings) ->
          Printf.printf "%s: %d error(s), %d warning(s)\n" name
            (Dataflow.Lint.errors findings)
            (Dataflow.Lint.warnings findings);
          print_string (Dataflow.Lint.render findings))
       targets;
     Printf.printf "%d target(s), %d error finding(s)\n" (List.length targets)
       total_errors);
  if total_errors > 0 then exit 1

let survey () =
  print_endline "Table 1: constructive approaches to predictability (part I)";
  print_string (Predictability.Survey.render Predictability.Survey.table1);
  print_newline ();
  print_endline "Table 2: constructive approaches to predictability (part II)";
  print_string (Predictability.Survey.render Predictability.Survey.table2)

open Cmdliner

let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "%d is not a positive job count" n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let jobs_arg =
  Arg.(value
       & opt positive_int (Prelude.Parallel.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the parallel evaluation engine \
                 (default: Domain.recommended_domain_count). Results are \
                 bit-identical for any value.")

let format_arg =
  Arg.(value
       & opt (enum [ ("text", Text); ("json", Json) ]) Text
       & info [ "format" ] ~docv:"FORMAT"
           ~doc:"Output format: $(b,text) (human-readable reports) or \
                 $(b,json) (one machine-readable document per invocation, \
                 schema predlab/report — the input of $(b,predlab \
                 compare)).")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List all experiments")
    Term.(const list_experiments $ const ())

let run_cmd =
  let id =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id (see `predlab list`)")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment and print its report")
    Term.(const run_one $ jobs_arg $ format_arg $ id)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run_all $ jobs_arg $ format_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run every experiment and print a per-experiment cost summary \
             (wall-clock, Q*I matrix cells, kernel evaluations). The text \
             table reports both the sum of per-experiment wall times and \
             the true elapsed wall clock — they differ under --jobs > 1.")
    Term.(const stats $ jobs_arg $ format_arg)

let compare_cmd =
  let tolerance_arg =
    let nonneg =
      let parse s =
        match Arg.conv_parser Arg.float s with
        | Ok t when t >= 0. -> Ok t
        | Ok t -> Error (`Msg (Printf.sprintf "%g is a negative tolerance" t))
        | Error _ as e -> e
      in
      Arg.conv (parse, Arg.conv_printer Arg.float)
    in
    Arg.(value
         & opt nonneg 50.
         & info [ "tolerance" ] ~docv:"PCT"
             ~doc:"Allowed slowdown in percent before a timing counts as a \
                   regression (default 50, i.e. up to 1.5x baseline is \
                   tolerated). Check regressions are gated regardless.")
  in
  let baseline_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"BASELINE" ~doc:"Baseline report (JSON)")
  in
  let current_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"CURRENT" ~doc:"Current report (JSON)")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Regression gate: diff two machine-readable reports (predlab \
             --format json or bench --json output) and exit nonzero on \
             check regressions, missing experiments, or slowdowns beyond \
             the tolerance.")
    Term.(const compare_reports $ tolerance_arg $ baseline_arg $ current_arg)

let survey_cmd =
  Cmd.v (Cmd.info "survey" ~doc:"Print the paper's Tables 1 and 2 as template instances")
    Term.(const survey $ const ())

let workloads_cmd =
  Cmd.v (Cmd.info "workloads" ~doc:"List the registered workload programs")
    Term.(const list_workloads $ const ())

let lint_cmd =
  let fixture_arg =
    Arg.(value
         & opt (some (enum [ ("clean", `Clean); ("dirty", `Dirty) ])) None
         & info [ "fixture" ] ~docv:"NAME"
             ~doc:"Lint a pinned fixture instead of workloads: $(b,clean) \
                   (expected finding-free) or $(b,dirty) (expected to trip \
                   every error rule).")
  in
  let names_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workloads to lint (default: every registered workload).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the dataflow linter (CFG, interval and liveness analyses \
             plus the loop-bound audit) over workload programs. Exits \
             nonzero iff any error-severity finding is reported; warnings \
             and infos are printed but do not gate.")
    Term.(const lint $ format_arg $ fixture_arg $ names_arg)

let program_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see `predlab workloads`)")
  in
  Cmd.v (Cmd.info "program" ~doc:"Disassemble a workload's compiled program")
    Term.(const show_program $ workload_arg)

let main =
  Cmd.group
    (Cmd.info "predlab" ~version:"1.0.0"
       ~doc:"Predictability laboratory: reproduction of Grund, Reineke & \
             Wilhelm, 'A Template for Predictability Definitions with \
             Supporting Evidence' (PPES 2011)")
    [ list_cmd; run_cmd; all_cmd; stats_cmd; compare_cmd; survey_cmd;
      workloads_cmd; program_cmd; lint_cmd ]

let () = exit (Cmd.eval main)
