(* predlab — command-line front end to the predictability laboratory:
   list/run the experiments that reproduce the paper's figures and tables
   (under a fault-tolerant supervisor with deadlines, retries and a
   crash-safe journal), print the survey tables, summarise per-experiment
   cost, run seeded chaos campaigns, and diff two machine-readable reports
   as a regression gate.

   Exit codes (the documented taxonomy; see HACKING.md):
     0  success
     1  every experiment completed, but some reproduction check failed
     2  usage/input error (unknown id, malformed file or --inject spec)
     3  supervision failure: >= 1 experiment crashed or timed out (for
        `query`, also a --timeout overrun against a wedged daemon)
     4  chaos: the supervisor or the serve plane degraded ungracefully
     5  overloaded: the serve daemon shed the connection (backpressure) *)

type format = Text | Json

let list_experiments () =
  List.iter
    (fun (id, title, _) -> Printf.printf "%-10s %s\n" id title)
    Predictability.Experiments.all

let apply_jobs jobs = Prelude.Parallel.set_default_jobs jobs

(* Arm the fault plane from --inject specs; a malformed spec is a usage
   error (exit 2) before anything runs. *)
let apply_injections specs =
  let sites =
    List.map
      (fun spec ->
         match Prelude.Faults.parse_spec spec with
         | Ok site -> site
         | Error message ->
           Printf.eprintf "predlab: --inject %s\n" message;
           exit 2)
      specs
  in
  if sites <> [] then Prelude.Faults.arm sites

let supervision_of ~deadline ~retries =
  { Predictability.Experiments.default_supervision with
    deadline_s = deadline; retries }

(* Final reports are written via a temporary file, a rename and a parent-
   directory fsync (Journal.write_atomic), so a crash mid-write can never
   leave a half-document where a previous good report used to be — and a
   crash just after cannot roll the rename back. *)
let emit ~out contents =
  match out with
  | None -> print_string contents
  | Some path -> Predictability.Journal.write_atomic path contents

let render_supervised_text results =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
       Buffer.add_string buf (Predictability.Experiments.supervised_render s);
       Buffer.add_string buf
         (Printf.sprintf "  [%s]\n\n"
            (Predictability.Report.timing_string
               s.Predictability.Experiments.s_timing)))
    results;
  buf

let supervised_summary jobs results =
  let failures = Predictability.Experiments.supervised_failures results in
  let check_failures =
    Predictability.Experiments.supervised_check_failures results
  in
  let count p = List.length (List.filter p results) in
  Printf.sprintf
    "%d/%d experiments fully passed their checks (jobs=%d)%s\n"
    (List.length results - List.length failures - List.length check_failures)
    (List.length results) jobs
    (let extras =
       (match failures with
        | [] -> []
        | fs ->
          [ Printf.sprintf "%d crashed/timed out (%s)" (List.length fs)
              (String.concat ", "
                 (List.map
                    (fun s -> s.Predictability.Experiments.s_id) fs)) ])
       @ (match count (fun s -> s.Predictability.Experiments.s_attempts > 1)
          with
          | 0 -> []
          | n -> [ Printf.sprintf "%d retried" n ])
       @ (match count (fun s -> s.Predictability.Experiments.s_resumed) with
          | 0 -> []
          | n -> [ Printf.sprintf "%d resumed from journal" n ])
     in
     if extras = [] then "" else "; " ^ String.concat "; " extras)

let exit_supervised results =
  if Predictability.Experiments.supervised_failures results <> [] then exit 3
  else if Predictability.Experiments.supervised_check_failures results <> []
  then exit 1

(* Shared driver of `run` and `all`: supervised execution, text/json
   rendering, optional journal/resume and atomic --out. *)
let run_supervised_cli ~jobs ~format ~deadline ~retries ~inject ~journal
    ~resume ~out ~entries =
  apply_jobs jobs;
  apply_injections inject;
  if resume && journal = None then begin
    Printf.eprintf "predlab: --resume requires --journal FILE\n";
    exit 2
  end;
  let supervision = supervision_of ~deadline ~retries in
  match
    Predictability.Harness.elapsed (fun () ->
        Predictability.Experiments.run_supervised ~jobs ~supervision
          ?journal ~resume ~entries ())
  with
  | exception Invalid_argument message ->
    Printf.eprintf "predlab: %s\n" message;
    exit 2
  | exception Sys_error message ->
    Printf.eprintf "predlab: %s\n" message;
    exit 2
  | results, elapsed_s ->
    (match format with
     | Text ->
       let buf = render_supervised_text results in
       Buffer.add_string buf (supervised_summary jobs results);
       emit ~out (Buffer.contents buf)
     | Json ->
       emit ~out
         (Prelude.Json.to_string_pretty
            (Predictability.Experiments.supervised_to_json ~jobs ~elapsed_s
               results)));
    exit_supervised results

let run_one jobs format deadline retries inject id =
  match Predictability.Experiments.lookup id with
  | Error message ->
    Printf.eprintf "%s\n" message;
    exit 2
  | Ok entry ->
    run_supervised_cli ~jobs ~format ~deadline ~retries ~inject
      ~journal:None ~resume:false ~out:None ~entries:[ entry ]

let run_all jobs format deadline retries inject journal resume out =
  run_supervised_cli ~jobs ~format ~deadline ~retries ~inject ~journal
    ~resume ~out ~entries:Predictability.Experiments.all

let chaos jobs format plane seed =
  apply_jobs jobs;
  match plane with
  | `Experiments ->
    let verdict = Predictability.Chaos.run ~jobs ~seed () in
    (match format with
     | Text -> print_string (Predictability.Chaos.render verdict)
     | Json ->
       print_string
         (Prelude.Json.to_string_pretty
            (Predictability.Chaos.verdict_to_json verdict)));
    if verdict.Predictability.Chaos.violations <> [] then exit 4
  | `Serve ->
    let verdict = Serve.Chaos.run ~seed () in
    (match format with
     | Text -> print_string (Serve.Chaos.render verdict)
     | Json ->
       print_string
         (Prelude.Json.to_string_pretty
            (Serve.Chaos.verdict_to_json verdict)));
    if verdict.Serve.Chaos.violations <> [] then exit 4

(* `stats` keeps the plain unsupervised path (schema v1): it is the cost
   summary and the ci.sh baseline-compare input, and doubles as coverage
   that v1 documents stay first-class citizens of the report toolchain. *)
let print_json_report ~jobs ~elapsed_s results =
  print_string
    (Prelude.Json.to_string_pretty
       (Predictability.Experiments.to_json ~jobs ~elapsed_s results))

let exit_on_failures results =
  let failed =
    List.filter
      (fun r ->
         not (Predictability.Report.all_passed
                r.Predictability.Experiments.outcome))
      results
  in
  if failed <> [] then exit 1

let stats jobs format =
  apply_jobs jobs;
  let results, elapsed_s =
    Predictability.Harness.elapsed (fun () ->
        Predictability.Experiments.run_all ~jobs ())
  in
  (match format with
   | Json -> print_json_report ~jobs ~elapsed_s results
   | Text ->
     let table =
       Prelude.Table.make
         ~header:[ "experiment"; "wall s"; "Q*I cells"; "kernel evals";
                   "checks" ]
     in
     let total_cells = ref 0 and total_evals = ref 0 in
     List.iter
       (fun { Predictability.Experiments.outcome; timing } ->
          total_cells := !total_cells + timing.Predictability.Report.cells;
          total_evals := !total_evals + timing.Predictability.Report.evals;
          let checks = outcome.Predictability.Report.checks in
          let passed =
            List.length
              (List.filter (fun c -> c.Predictability.Report.passed) checks)
          in
          Prelude.Table.add_row table
            [ outcome.Predictability.Report.id;
              Printf.sprintf "%.3f" timing.Predictability.Report.wall_s;
              string_of_int timing.Predictability.Report.cells;
              string_of_int timing.Predictability.Report.evals;
              Printf.sprintf "%d/%d" passed (List.length checks) ])
       results;
     let wall_sum = Predictability.Experiments.wall_sum results in
     Prelude.Table.add_separator table;
     (* Two totals on purpose: per-experiment walls overlap under jobs>1, so
        their sum is CPU-time-flavoured; elapsed is the true wall clock. *)
     Prelude.Table.add_row table
       [ "sum"; Printf.sprintf "%.3f" wall_sum; string_of_int !total_cells;
         string_of_int !total_evals; "" ];
     Prelude.Table.add_row table
       [ "elapsed"; Printf.sprintf "%.3f" elapsed_s; ""; ""; "" ];
     print_string (Prelude.Table.render table);
     Printf.printf
       "sum = per-experiment wall added up (runs overlap under jobs>1); \
        elapsed = true wall clock\n";
     Printf.printf "jobs=%d (recommended on this machine: %d)\n" jobs
       (Prelude.Parallel.recommended_jobs ()));
  exit_on_failures results

let read_json_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error message ->
    Printf.eprintf "predlab compare: %s\n" message;
    exit 2
  | contents -> (
      match Prelude.Json.parse contents with
      | Ok json -> json
      | Error message ->
        Printf.eprintf "predlab compare: %s: %s\n" path message;
        exit 2)

let compare_reports tolerance baseline_path current_path =
  let baseline = read_json_file baseline_path in
  let current = read_json_file current_path in
  match
    Predictability.Regression.compare_reports ~tolerance_pct:tolerance
      ~baseline ~current ()
  with
  | exception Invalid_argument message ->
    Printf.eprintf "predlab compare: %s\n" message;
    exit 2
  | [] ->
    Printf.printf "OK: %s is no worse than %s (tolerance %.0f%%)\n"
      current_path baseline_path tolerance
  | findings ->
    List.iter
      (fun f ->
         Printf.printf "%s\n" (Predictability.Regression.finding_string f))
      findings;
    Printf.printf "%d regression finding(s) comparing %s against %s\n"
      (List.length findings) current_path baseline_path;
    exit 1

let list_workloads () =
  List.iter
    (fun (name, make) ->
       let w = make () in
       Printf.printf "%-16s %s (%d inputs)\n" name
         w.Isa.Workload.description
         (List.length w.Isa.Workload.inputs))
    Isa.Workload.registry

let show_program name =
  match List.assoc_opt name Isa.Workload.registry with
  | None ->
    Printf.eprintf "unknown workload %S; try `predlab workloads`\n" name;
    exit 2
  | Some make ->
    let w = make () in
    let program, _ = Isa.Workload.program w in
    Printf.printf "; %s — %s\n" w.Isa.Workload.name w.Isa.Workload.description;
    Format.printf "%a@." Isa.Program.pp program;
    Printf.printf "; %d instructions, %d admissible inputs\n"
      (Isa.Program.length program)
      (List.length w.Isa.Workload.inputs)

(* Target selection shared by lint and certify: positional names (default
   the whole registry), then the bench-style `--only SUBSTR` filter. *)
let select_workloads ~command ~only names =
  let selected =
    match names with
    | [] -> Isa.Workload.registry
    | names ->
      List.map
        (fun name ->
           match List.assoc_opt name Isa.Workload.registry with
           | Some make -> (name, make)
           | None ->
             Printf.eprintf "unknown workload %S; try `predlab workloads`\n"
               name;
             exit 2)
        names
  in
  match only with
  | None -> selected
  | Some substr -> (
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i =
          i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
        in
        nn = 0 || at 0
      in
      match List.filter (fun (name, _) -> contains name substr) selected with
      | [] ->
        Printf.eprintf "predlab %s: --only %s matches no workload\n" command
          substr;
        exit 2
      | matching -> matching)

(* `predlab lint`: run the dataflow linter over workloads (default: the
   whole registry) or one of the pinned fixtures. Exit 1 iff any
   error-severity finding is reported — the ci.sh gate. *)
let lint format only fixture names =
  let targets =
    match fixture with
    | Some `Clean ->
      let program, shapes = Dataflow.Fixtures.clean () in
      [ ("fixture:clean",
         Dataflow.Lint.check_program program @ Dataflow.Lint.check_shapes shapes) ]
    | Some `Dirty ->
      [ ("fixture:dirty", Dataflow.Lint.check_program (Dataflow.Fixtures.dirty ())) ]
    | None ->
      List.map
        (fun (name, make) -> (name, Dataflow.Lint.check_workload (make ())))
        (select_workloads ~command:"lint" ~only names)
  in
  let total_errors =
    List.fold_left (fun acc (_, fs) -> acc + Dataflow.Lint.errors fs) 0 targets
  in
  (match format with
   | Json ->
     print_endline
       (Prelude.Json.to_string_pretty (Dataflow.Lint.report_to_json targets))
   | Text ->
     List.iter
       (fun (name, findings) ->
          Printf.printf "%s: %d error(s), %d warning(s)\n" name
            (Dataflow.Lint.errors findings)
            (Dataflow.Lint.warnings findings);
          print_string (Dataflow.Lint.render findings))
       targets;
     Printf.printf "%d target(s), %d error finding(s)\n" (List.length targets)
       total_errors);
  if total_errors > 0 then exit 1

(* `predlab certify`: static predictability certificates over the
   standard machine pair (Certifier). The JSON document is built by the
   same constructor the serve daemon's certify op uses, so `predlab
   query certify` matches byte-for-byte. Exit 1 iff any declared
   expectation (--require-invariant, or a fixture's built-in one) is
   contradicted by the flat-machine verdict — the leaky-fixture gate in
   ci.sh. *)
let certify format only fixture require_invariant names =
  let rows =
    match fixture with
    | Some fixture ->
      (* Both pinned fixtures declare the constant-time expectation:
         leakfree holds it, leaky was written to contradict it. *)
      let w =
        match fixture with
        | `Leakfree -> Dataflow.Fixtures.leakfree ()
        | `Leaky -> Dataflow.Fixtures.leaky ()
      in
      [ Predictability.Certifier.row ~expect:Analysis.Certify.Invariant w ]
    | None ->
      let expect =
        if require_invariant then Some Analysis.Certify.Invariant else None
      in
      List.map
        (fun (_, make) -> Predictability.Certifier.row ?expect (make ()))
        (select_workloads ~command:"certify" ~only names)
  in
  let contradictions = Predictability.Certifier.contradictions rows in
  (match format with
   | Json ->
     print_endline
       (Prelude.Json.to_string_pretty
          (Predictability.Certifier.report_to_json rows))
   | Text ->
     print_string (Predictability.Certifier.render rows);
     Printf.printf "%d target(s), %d contradicted expectation(s)\n"
       (List.length rows) contradictions);
  if contradictions > 0 then exit 1

(* `predlab sample`: seeded sampling estimators (Pr/SIPr/IIPr, mean,
   BCET/WCET tails, each with a CI) over workloads — the scale-past-
   exhaustive path, gated by the DEF.SAMPLE oracle. With --check the
   exhaustive quantities are computed next to the estimates and exit 1
   signals any value outside its CI. *)
let sample jobs format seed samples confidence check names =
  apply_jobs jobs;
  let spec =
    { Sampling.Sampler.default with seed; n_cells = samples; confidence }
  in
  let selected =
    match names with
    | [] -> Isa.Workload.registry
    | names ->
      List.map
        (fun name ->
           match List.assoc_opt name Isa.Workload.registry with
           | Some make -> (name, make)
           | None ->
             Printf.eprintf "unknown workload %S; try `predlab workloads`\n"
               name;
             exit 2)
        names
  in
  let rows =
    match
      List.map
        (fun entry ->
           Predictability.Sampled.analyze ~jobs ~spec ~cross_check:check entry)
        selected
    with
    | exception Invalid_argument message ->
      Printf.eprintf "predlab sample: %s\n" message;
      exit 2
    | rows -> rows
  in
  (match format with
   | Json ->
     print_endline
       (Prelude.Json.to_string_pretty
          (Predictability.Sampled.report_to_json ~jobs rows))
   | Text ->
     List.iter (fun row -> print_string (Predictability.Sampled.render row))
       rows;
     if check then
       let outside =
         List.filter (fun r -> not (Predictability.Sampled.all_contained r))
           rows
       in
       Printf.printf "%d/%d workloads with every exhaustive value inside its CI\n"
         (List.length rows - List.length outside)
         (List.length rows));
  if check
     && List.exists (fun r -> not (Predictability.Sampled.all_contained r))
          rows
  then exit 1

(* `predlab serve`: the resident evaluation daemon (lib/serve). Blocks
   until a shutdown request or SIGTERM/SIGINT arrives (graceful drain
   either way); exits 0 on that clean path, 2 on any setup failure
   (socket busy, bad flags). *)
let serve socket jobs deadline cache_bound conns queue idle drain max_frame =
  apply_jobs jobs;
  let config =
    { Serve.Daemon.socket; jobs; deadline_s = deadline;
      memo_bound = cache_bound; conns; queue; idle_s = idle;
      drain_s = drain; max_frame }
  in
  let on_ready () =
    Printf.eprintf "predlab serve: listening on %s (jobs=%d, conns=%d)\n%!"
      socket jobs conns
  in
  match Serve.Daemon.run ~on_ready config with
  | () -> Printf.eprintf "predlab serve: shut down cleanly\n%!"
  | exception Serve.Daemon.Busy message ->
    Printf.eprintf "predlab serve: %s\n" message;
    exit 2
  | exception Invalid_argument message ->
    Printf.eprintf "predlab serve: %s\n" message;
    exit 2
  | exception Sys_error message ->
    Printf.eprintf "predlab serve: %s\n" message;
    exit 2
  | exception Unix.Unix_error (err, fn, arg) ->
    Printf.eprintf "predlab serve: %s: %s %s\n" (Unix.error_message err) fn
      arg;
    exit 2

(* `predlab query`: one request-response round trip against a running
   daemon. The result document of run/sample/lint/certify is printed with
   exactly
   the emitter call the one-shot CLI uses for that command, so the bytes
   match; exits mirror the documented taxonomy (2 usage/connection, 3 on
   a timed-out/crashed verdict, 1 on failed checks). *)
let query_usage =
  "usage: predlab query [flags] OP ...\n\
  \  eval WORKLOAD STATE INPUT | run ID | sample [WORKLOAD...]\n\
  \  | lint [WORKLOAD...] | certify [WORKLOAD...]\n\
  \  | compare BASELINE.json CURRENT.json\n\
  \  | stats | shutdown   (or --raw LINE)"

let load_json_doc path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error message -> Error message
  | contents -> (
      match Prelude.Json.parse contents with
      | Ok json -> Ok json
      | Error message -> Error (Printf.sprintf "%s: %s" path message))

let build_request ~retries ~seed ~samples ~confidence ~tolerance = function
  | [ "eval"; workload; state; input ] -> (
      match int_of_string_opt state, int_of_string_opt input with
      | Some state, Some input ->
        Ok (Serve.Protocol.Eval { workload; state; input })
      | _ -> Error "eval: STATE and INPUT must be integers")
  | "eval" :: _ -> Error "usage: predlab query eval WORKLOAD STATE INPUT"
  | [ "run"; id ] -> Ok (Serve.Protocol.Run { id; retries })
  | "run" :: _ -> Error "usage: predlab query run ID"
  | "sample" :: workloads ->
    Ok (Serve.Protocol.Sample { workloads; seed; samples; confidence })
  | "lint" :: workloads -> Ok (Serve.Protocol.Lint { workloads })
  | "certify" :: workloads -> Ok (Serve.Protocol.Certify { workloads })
  | [ "compare"; baseline_path; current_path ] ->
    Result.bind (load_json_doc baseline_path) (fun baseline ->
        Result.bind (load_json_doc current_path) (fun current ->
            Ok (Serve.Protocol.Compare { baseline; current; tolerance })))
  | "compare" :: _ ->
    Error "usage: predlab query compare BASELINE.json CURRENT.json"
  | [ "stats" ] -> Ok Serve.Protocol.Stats
  | [ "shutdown" ] -> Ok Serve.Protocol.Shutdown
  | _ -> Error query_usage

(* The one-shot CLI prints sample/lint/certify documents with
   [print_endline] (trailing blank line) and run documents with
   [print_string]; replicate per op so `query OP > a.json` and `predlab
   OP --format json > b.json` compare byte-for-byte. *)
let print_result ~op result =
  let rendered = Prelude.Json.to_string_pretty result in
  match op with
  | "sample" | "lint" | "certify" -> print_endline rendered
  | _ -> print_string rendered

let run_exit_of result =
  let count name =
    Option.bind (Prelude.Json.member name result) Prelude.Json.int_value
  in
  match count "crashed", count "timed_out" with
  | Some c, _ when c > 0 -> 3
  | _, Some t when t > 0 -> 3
  | _ -> (
      match count "experiments_passed", count "experiments_total" with
      | Some p, Some t when p < t -> 1
      | _ -> 0)

let query socket connect_timeout timeout deadline retries seed samples
    confidence tolerance raw args =
  let request_json =
    match raw with
    | Some line -> (
        match Prelude.Json.parse line with
        | Ok json -> json
        | Error message ->
          Printf.eprintf "predlab query: --raw: %s\n" message;
          exit 2)
    | None -> (
        match
          build_request ~retries ~seed ~samples ~confidence ~tolerance args
        with
        | Ok request ->
          Serve.Protocol.request_to_json ?deadline_s:deadline request
        | Error message ->
          Printf.eprintf "predlab query: %s\n" message;
          exit 2)
  in
  match Serve.Client.connect ~retry_for_s:connect_timeout socket with
  | Error message ->
    Printf.eprintf "predlab query: cannot connect: %s\n" message;
    exit 2
  | Ok client ->
    let response =
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
           Serve.Client.request ?timeout_s:timeout client request_json)
    in
    (match response with
     | Error (Serve.Client.Timeout after_s) ->
       (* A wedged daemon is a supervision-style failure, not usage:
          same exit as a timed-out experiment. *)
       Printf.eprintf "predlab query: timed out after %gs\n" after_s;
       exit 3
     | Error error ->
       Printf.eprintf "predlab query: %s\n" (Serve.Client.error_message error);
       exit 2
     | Ok response -> (
         let member name = Prelude.Json.member name response in
         match member "ok" with
         | Some (Prelude.Json.Bool true) ->
           let op =
             match Option.bind (member "op") Prelude.Json.string_value with
             | Some op -> op
             | None -> ""
           in
           let result =
             Option.value ~default:Prelude.Json.Null (member "result")
           in
           print_result ~op result;
           if op = "run" then
             (match run_exit_of result with 0 -> () | code -> exit code);
           if
             op = "compare"
             && Prelude.Json.member "passed" result
                = Some (Prelude.Json.Bool false)
           then exit 1
         | Some (Prelude.Json.Bool false) ->
           let error_message =
             match
               Option.bind (member "error") Prelude.Json.string_value
             with
             | Some m -> m
             | None -> "unknown error"
           in
           Printf.eprintf "predlab query: %s\n" error_message;
           (match
              Option.bind (member "status") Prelude.Json.string_value
            with
            | Some "timed_out" -> exit 3
            | Some "overloaded" -> exit 5
            | _ -> exit 1)
         | _ ->
           Printf.eprintf "predlab query: malformed response envelope\n";
           exit 2))

let survey () =
  print_endline "Table 1: constructive approaches to predictability (part I)";
  print_string (Predictability.Survey.render Predictability.Survey.table1);
  print_newline ();
  print_endline "Table 2: constructive approaches to predictability (part II)";
  print_string (Predictability.Survey.render Predictability.Survey.table2)

open Cmdliner

let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "%d is not a positive job count" n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let jobs_arg =
  Arg.(value
       & opt positive_int (Prelude.Parallel.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the parallel evaluation engine \
                 (default: Domain.recommended_domain_count). Results are \
                 bit-identical for any value.")

let format_arg =
  Arg.(value
       & opt (enum [ ("text", Text); ("json", Json) ]) Text
       & info [ "format" ] ~docv:"FORMAT"
           ~doc:"Output format: $(b,text) (human-readable reports) or \
                 $(b,json) (one machine-readable document per invocation, \
                 schema predlab/report — the input of $(b,predlab \
                 compare)).")

let deadline_arg =
  let positive_float =
    let parse s =
      match Arg.conv_parser Arg.float s with
      | Ok d when d > 0. -> Ok d
      | Ok d -> Error (`Msg (Printf.sprintf "%g is not a positive deadline" d))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.float)
  in
  Arg.(value
       & opt (some positive_float) None
       & info [ "deadline" ] ~docv:"SEC"
           ~doc:"Cooperative per-attempt budget in seconds: an experiment \
                 observed past it (at a parallel-loop checkpoint, or when \
                 its runner returns) is classified $(b,timed_out) instead \
                 of crashing the batch.")

let retries_arg =
  let nonneg_int =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 0 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "%d is a negative retry count" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(value
       & opt nonneg_int 0
       & info [ "retries" ] ~docv:"N"
           ~doc:"Extra attempts after a crash or deadline overrun, with \
                 bounded exponential backoff (50 ms base, 1 s cap). The \
                 report's $(b,attempts) field records what was used.")

let inject_arg =
  Arg.(value
       & opt_all string []
       & info [ "inject" ] ~docv:"SITE=ACTION"
           ~doc:"Arm a fault-injection site for this run (repeatable; \
                 fires on the site's first arrival). ACTION is $(b,raise), \
                 $(b,timeout) or $(b,delay:MS); sites include \
                 $(b,experiment:<ID>), $(b,parallel.spawn), \
                 $(b,parallel.task) and the serve plane's \
                 $(b,serve.accept)/$(b,serve.read)/$(b,serve.write). \
                 Example: --inject experiment:EQ4=raise.")

let journal_arg =
  Arg.(value
       & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Append one JSON line (schema predlab/journal) per \
                 finished experiment, fsynced as it happens — a run \
                 killed mid-batch loses only the experiments still in \
                 flight.")

let resume_arg =
  Arg.(value
       & flag
       & info [ "resume" ]
           ~doc:"Skip experiments whose last $(b,--journal) line is \
                 completed, reconstructing their report records from the \
                 journal; re-run only the rest. Requires --journal.")

let out_arg =
  Arg.(value
       & opt (some string) None
       & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the report to FILE (atomic: temp file + rename) \
                 instead of stdout.")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List all experiments")
    Term.(const list_experiments $ const ())

let run_cmd =
  let id =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id (see `predlab list`)")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run one experiment under supervision and print its report. \
             Exits 0 on success, 1 on failed checks, 3 if the experiment \
             crashed or timed out.")
    Term.(const run_one $ jobs_arg $ format_arg $ deadline_arg $ retries_arg
          $ inject_arg $ id)

let all_cmd =
  Cmd.v
    (Cmd.info "all"
       ~doc:"Run every experiment under the fault-tolerant supervisor: a \
             crashing or overrunning experiment becomes a structured \
             crashed/timed_out record (schema v2) while the rest of the \
             registry completes. Exits 0 on success, 1 on failed checks, \
             3 if any experiment crashed or timed out.")
    Term.(const run_all $ jobs_arg $ format_arg $ deadline_arg $ retries_arg
          $ inject_arg $ journal_arg $ resume_arg $ out_arg)

let chaos_cmd =
  let seed_arg =
    Arg.(value
         & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:"Campaign seed: deterministically picks which sites \
                   get raise/delay/timeout faults. Equal seeds give \
                   equal campaigns on any machine.")
  in
  let plane_arg =
    Arg.(value
         & opt (enum [ ("experiments", `Experiments); ("serve", `Serve) ])
             `Experiments
         & info [ "plane" ] ~docv:"PLANE"
             ~doc:"What to attack: $(b,experiments) (the supervisor, \
                   default) or $(b,serve) (a live daemon over real \
                   sockets: torn frames, slowloris, disconnects, \
                   oversized frames, burst load and armed \
                   serve.accept/read/write sites).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Seeded fault campaign. --plane experiments: run all \
             experiments under persistent injected faults (no retries) \
             and again under transient faults (one retry), then assert \
             graceful degradation — no lost experiments, registry order \
             preserved, every injected failure classified, retries \
             recovering transients. --plane serve: drive adversarial \
             clients and armed fault sites against an in-process daemon \
             and assert it never dies, sheds deterministically and keeps \
             responses byte-identical. Exits 4 on a violation; injected \
             failures themselves are expected and do not fail the \
             command.")
    Term.(const chaos $ jobs_arg $ format_arg $ plane_arg $ seed_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run every experiment and print a per-experiment cost summary \
             (wall-clock, Q*I matrix cells, kernel evaluations). The text \
             table reports both the sum of per-experiment wall times and \
             the true elapsed wall clock — they differ under --jobs > 1.")
    Term.(const stats $ jobs_arg $ format_arg)

let compare_cmd =
  let tolerance_arg =
    let nonneg =
      let parse s =
        match Arg.conv_parser Arg.float s with
        | Ok t when t >= 0. -> Ok t
        | Ok t -> Error (`Msg (Printf.sprintf "%g is a negative tolerance" t))
        | Error _ as e -> e
      in
      Arg.conv (parse, Arg.conv_printer Arg.float)
    in
    Arg.(value
         & opt nonneg 50.
         & info [ "tolerance" ] ~docv:"PCT"
             ~doc:"Allowed slowdown in percent before a timing counts as a \
                   regression (default 50, i.e. up to 1.5x baseline is \
                   tolerated). Check regressions are gated regardless.")
  in
  let baseline_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"BASELINE" ~doc:"Baseline report (JSON)")
  in
  let current_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"CURRENT" ~doc:"Current report (JSON)")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Regression gate: diff two machine-readable reports (predlab \
             --format json or bench --json output) and exit nonzero on \
             check regressions, missing experiments, or slowdowns beyond \
             the tolerance.")
    Term.(const compare_reports $ tolerance_arg $ baseline_arg $ current_arg)

let survey_cmd =
  Cmd.v (Cmd.info "survey" ~doc:"Print the paper's Tables 1 and 2 as template instances")
    Term.(const survey $ const ())

let workloads_cmd =
  Cmd.v (Cmd.info "workloads" ~doc:"List the registered workload programs")
    Term.(const list_workloads $ const ())

let only_arg command =
  Arg.(value
       & opt (some string) None
       & info [ "only" ] ~docv:"SUBSTR"
           ~doc:(Printf.sprintf
                   "Keep only the selected workloads whose name contains \
                    SUBSTR (as in $(b,bench --only)); exits 2 if nothing \
                    matches. Composes with positional names: `predlab %s \
                    --only sort` runs the sorting kernels."
                   command))

let lint_cmd =
  let fixture_arg =
    Arg.(value
         & opt (some (enum [ ("clean", `Clean); ("dirty", `Dirty) ])) None
         & info [ "fixture" ] ~docv:"NAME"
             ~doc:"Lint a pinned fixture instead of workloads: $(b,clean) \
                   (expected finding-free) or $(b,dirty) (expected to trip \
                   every error rule).")
  in
  let names_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workloads to lint (default: every registered workload).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the dataflow linter (CFG, interval, liveness and \
             timing-taint analyses plus the loop-bound audit) over \
             workload programs. Exits nonzero iff any error-severity \
             finding is reported; warnings (including $(b,timing-leak) \
             and $(b,dead-result-reg)) and infos are printed but do not \
             gate.")
    Term.(const lint $ format_arg $ only_arg "lint" $ fixture_arg
          $ names_arg)

let certify_cmd =
  let fixture_arg =
    Arg.(value
         & opt (some (enum [ ("leakfree", `Leakfree); ("leaky", `Leaky) ]))
             None
         & info [ "fixture" ] ~docv:"NAME"
             ~doc:"Certify a pinned fixture instead of workloads, with the \
                   constant-time expectation declared: $(b,leakfree) \
                   (expected Invariant — holds) or $(b,leaky) (a falsely \
                   assumed constant-time kernel — the expectation is \
                   contradicted and the command exits 1).")
  in
  let require_invariant_arg =
    Arg.(value
         & flag
         & info [ "require-invariant" ]
             ~doc:"Declare the Invariant expectation for every selected \
                   workload; exit 1 if any flat-machine verdict is \
                   Bounded.")
  in
  let names_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workloads to certify (default: every registered \
                   workload).")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Issue static predictability certificates: run the \
             timing-taint analysis and the restricted WCET/BCET walks \
             over each workload on the flat and cached machine models, \
             and report $(b,invariant) (Pr = SIPr = IIPr = 1, proved \
             without executing) or $(b,bounded) (a sound spread bound \
             with the leaking program points). Verdicts are gated by the \
             DEF.CERT oracle experiment. Exits 1 iff a declared \
             expectation is contradicted.")
    Term.(const certify $ format_arg $ only_arg "certify" $ fixture_arg
          $ require_invariant_arg $ names_arg)

let sample_cmd =
  let seed_arg =
    Arg.(value
         & opt int Sampling.Sampler.default.Sampling.Sampler.seed
         & info [ "seed" ] ~docv:"N"
             ~doc:"Sampling seed. Equal seeds give bit-identical reports \
                   for any --jobs value; the seed is echoed in the \
                   report.")
  in
  let samples_arg =
    Arg.(value
         & opt positive_int Sampling.Sampler.default.Sampling.Sampler.n_cells
         & info [ "samples" ] ~docv:"N"
             ~doc:"Monte-Carlo (state, input) cell draws per workload \
                   (stratified SIPr/IIPr passes are sized separately by \
                   the spec).")
  in
  let confidence_arg =
    let conf =
      let parse s =
        match Arg.conv_parser Arg.float s with
        | Ok c when c > 0. && c < 1. -> Ok c
        | Ok c ->
          Error (`Msg (Printf.sprintf "%g is not a confidence in (0, 1)" c))
        | Error _ as e -> e
      in
      Arg.conv (parse, Arg.conv_printer Arg.float)
    in
    Arg.(value
         & opt conf Sampling.Sampler.default.Sampling.Sampler.confidence
         & info [ "confidence" ] ~docv:"C"
             ~doc:"Two-sided CI coverage target in (0, 1), default 0.99.")
  in
  let check_arg =
    Arg.(value
         & flag
         & info [ "check" ]
             ~doc:"Also compute the exhaustive quantities (full Q*I sweep) \
                   and verify each lands inside its CI; exit 1 if any \
                   falls outside.")
  in
  let names_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workloads to sample (default: every registered \
                   workload).")
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Estimate Pr/SIPr/IIPr, the mean execution time and \
             pWCET-style BCET/WCET tails from seeded samples instead of \
             the exhaustive Q*I sweep. Every estimate carries a \
             confidence interval; an interval is a statistical statement, \
             not a bound (see README). Results are bit-identical across \
             --jobs and repeated runs at a fixed seed.")
    Term.(const sample $ jobs_arg $ format_arg $ seed_arg $ samples_arg
          $ confidence_arg $ check_arg $ names_arg)

let program_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see `predlab workloads`)")
  in
  Cmd.v (Cmd.info "program" ~doc:"Disassemble a workload's compiled program")
    Term.(const show_program $ workload_arg)

let socket_arg =
  Arg.(required
       & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path of the daemon.")

let serve_cmd =
  let cache_bound_arg =
    Arg.(value
         & opt positive_int Serve.Daemon.default_memo_bound
         & info [ "cache-bound" ] ~docv:"N"
             ~doc:"Upper bound on memoized T_p cells per workload engine \
                   (FIFO eviction past it). The $(b,stats) op reports \
                   occupancy.")
  in
  let conns_arg =
    Arg.(value
         & opt positive_int Serve.Daemon.default_conns
         & info [ "conns" ] ~docv:"N"
             ~doc:"Connection worker domains: how many client connections \
                   are served concurrently (default 4).")
  in
  let queue_arg =
    let nonneg =
      let parse s =
        match Arg.conv_parser Arg.int s with
        | Ok n when n >= 0 -> Ok n
        | Ok n -> Error (`Msg (Printf.sprintf "%d is a negative bound" n))
        | Error _ as e -> e
      in
      Arg.conv (parse, Arg.conv_printer Arg.int)
    in
    Arg.(value
         & opt nonneg Serve.Daemon.default_queue
         & info [ "queue" ] ~docv:"N"
             ~doc:"Pending-connection queue bound: connections past it \
                   (while every worker is busy) are shed with the \
                   structured $(b,overloaded) envelope instead of \
                   queueing without bound. 0 sheds whenever all workers \
                   are busy.")
  in
  let idle_arg =
    let idle_conv =
      let parse s =
        match Arg.conv_parser Arg.float s with
        | Ok d when d > 0. -> Ok (Some d)
        | Ok d when d = 0. -> Ok None
        | Ok d -> Error (`Msg (Printf.sprintf "%g is not a valid budget" d))
        | Error e -> Error e
      in
      let print ppf = function
        | None -> Format.pp_print_string ppf "0"
        | Some d -> Arg.conv_printer Arg.float ppf d
      in
      Arg.conv (parse, print)
    in
    Arg.(value
         & opt idle_conv Serve.Daemon.default_idle_s
         & info [ "idle" ] ~docv:"SEC"
             ~doc:"Per-connection budget for one complete request frame \
                   (and one response write): a wedged or byte-dripping \
                   client is reaped past it, never blocking its worker \
                   indefinitely. 0 disables reaping (default 30).")
  in
  let drain_arg =
    let positive_float =
      let parse s =
        match Arg.conv_parser Arg.float s with
        | Ok d when d > 0. -> Ok d
        | Ok d -> Error (`Msg (Printf.sprintf "%g is not a positive budget" d))
        | Error _ as e -> e
      in
      Arg.conv (parse, Arg.conv_printer Arg.float)
    in
    Arg.(value
         & opt positive_float Serve.Daemon.default_drain_s
         & info [ "drain" ] ~docv:"SEC"
             ~doc:"Graceful-drain budget: on shutdown/SIGTERM/SIGINT, how \
                   long in-flight connections get to finish before being \
                   force-reset (default 5).")
  in
  let max_frame_arg =
    Arg.(value
         & opt positive_int Serve.Daemon.default_max_frame
         & info [ "max-frame" ] ~docv:"BYTES"
             ~doc:"Byte cap on one request line: an oversized frame is \
                   discarded whole and answered with a request-level \
                   error, the connection survives, and daemon memory \
                   stays bounded (default 1 MiB).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident evaluation daemon: accept JSONL requests \
             (eval/run/sample/lint/certify/stats/shutdown) on a Unix-domain \
             socket, served by a bounded pool of $(b,--conns) worker \
             domains over shared memo-cached engines. Result documents \
             match the one-shot CLI's --format json output byte-for-byte \
             for any --jobs/--conns. Overload is shed with a structured \
             envelope; shutdown (request or SIGTERM/SIGINT) drains \
             gracefully. Pair with $(b,predlab query).")
    Term.(const serve $ socket_arg $ jobs_arg $ deadline_arg
          $ cache_bound_arg $ conns_arg $ queue_arg $ idle_arg $ drain_arg
          $ max_frame_arg)

let query_cmd =
  let connect_timeout_arg =
    Arg.(value
         & opt float 5.
         & info [ "connect-timeout" ] ~docv:"SEC"
             ~doc:"Keep retrying a refused connection for up to SEC \
                   seconds — covers the daemon's startup window in \
                   scripts.")
  in
  let timeout_arg =
    let positive_float =
      let parse s =
        match Arg.conv_parser Arg.float s with
        | Ok d when d > 0. -> Ok d
        | Ok d -> Error (`Msg (Printf.sprintf "%g is not a positive budget" d))
        | Error _ as e -> e
      in
      Arg.conv (parse, Arg.conv_printer Arg.float)
    in
    Arg.(value
         & opt (some positive_float) None
         & info [ "timeout" ] ~docv:"SEC"
             ~doc:"Round-trip budget against a connected daemon: if no \
                   complete response line arrives within SEC seconds \
                   (monotonic clock), exit 3 — a wedged daemon must not \
                   hang the query forever. Distinct from $(b,--deadline), \
                   which is enforced daemon-side.")
  in
  let seed_arg =
    Arg.(value
         & opt (some int) None
         & info [ "seed" ] ~docv:"N"
             ~doc:"Sampling seed for the $(b,sample) op (default: the \
                   sampler's, as in `predlab sample`).")
  in
  let samples_arg =
    Arg.(value
         & opt (some positive_int) None
         & info [ "samples" ] ~docv:"N"
             ~doc:"Cell draws per workload for the $(b,sample) op.")
  in
  let confidence_arg =
    Arg.(value
         & opt (some float) None
         & info [ "confidence" ] ~docv:"C"
             ~doc:"CI coverage target for the $(b,sample) op.")
  in
  let tolerance_arg =
    Arg.(value
         & opt (some float) None
         & info [ "tolerance" ] ~docv:"PCT"
             ~doc:"Slowdown tolerance in percent for the $(b,compare) op \
                   (default: the gate's, as in `predlab compare`).")
  in
  let raw_arg =
    Arg.(value
         & opt (some string) None
         & info [ "raw" ] ~docv:"LINE"
             ~doc:"Send LINE (a JSON request object) verbatim instead of \
                   building one from the positional arguments.")
  in
  let args_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"OP"
             ~doc:"Request: $(b,eval) WORKLOAD STATE INPUT; $(b,run) ID; \
                   $(b,sample) [WORKLOAD...]; $(b,lint) [WORKLOAD...]; \
                   $(b,certify) [WORKLOAD...]; $(b,compare) BASELINE.json \
                   CURRENT.json; $(b,stats); $(b,shutdown).")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one request to a running $(b,predlab serve) daemon and \
             print the result document (for run/sample/lint/certify: the \
             same bytes the one-shot CLI prints under --format json). Exit \
             status mirrors the CLI: 0 ok, 1 failed checks, 2 \
             usage/connection error, 3 timed-out or crashed (including a \
             $(b,--timeout) overrun), 5 shed by an overloaded daemon.")
    Term.(const query $ socket_arg $ connect_timeout_arg $ timeout_arg
          $ deadline_arg $ retries_arg $ seed_arg $ samples_arg
          $ confidence_arg $ tolerance_arg $ raw_arg $ args_arg)

let main =
  Cmd.group
    (Cmd.info "predlab" ~version:"1.0.0"
       ~doc:"Predictability laboratory: reproduction of Grund, Reineke & \
             Wilhelm, 'A Template for Predictability Definitions with \
             Supporting Evidence' (PPES 2011)")
    [ list_cmd; run_cmd; all_cmd; chaos_cmd; stats_cmd; compare_cmd;
      survey_cmd; workloads_cmd; program_cmd; lint_cmd; certify_cmd;
      sample_cmd; serve_cmd; query_cmd ]

let () = exit (Cmd.eval main)
