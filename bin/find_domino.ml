(* Search for a domino kernel matching Equation 4 of the paper: two initial
   pipeline states from which n iterations take exactly 9n+1 and 12n cycles
   on the greedy dual-unit machine. The space mirrors the PowerPC 755
   organisation Schneider described: simple operations (both units) and one
   complex operation (only the second unit) per iteration, read-after-write
   dependences reaching up to three operations back.

   Run with DOMINO_DIAG=1 to list every bistable (rate, offset) pair found
   instead of only exact Equation-4 matches. *)

let horizon = 24

let linear_fit times =
  (* times.(i) = T(i+1); require exact linearity from n = 2 on. *)
  let n = Array.length times in
  let a = times.(n - 1) - times.(n - 2) in
  let b = times.(n - 1) - (a * n) in
  let ok = ref true in
  for i = 1 to n - 1 do
    if times.(i) <> (a * (i + 1)) + b then ok := false
  done;
  if !ok then Some (a, b) else None

let () =
  let diagnostic = Sys.getenv_opt "DOMINO_DIAG" <> None in
  let lat_choices = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ] in
  (* Steady rates come from unit-latency combinations; only latency triples
     that can compose both a 9 and a 12 are worth simulating. *)
  let feasible a0 a1 c =
    let sums = [ a0; a1; c; a0 + c; a1 + c; a0 + a1 ] in
    List.mem 9 sums && List.mem 12 sums
  in
  let dep_choices = [ []; [ 1 ]; [ 2 ]; [ 3 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ] in
  let inits =
    List.concat_map (fun x -> [ (x, 0); (0, x) ]) [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let found = ref 0 in
  let seen_pairs = Hashtbl.create 97 in
  let test ~lat ~show ~iteration ~q2 =
    let config = { Pipeline.Ooo.latency = lat; dispatch = Pipeline.Ooo.Greedy } in
    let t init n = Pipeline.Ooo.run_kernel config ~iteration ~n ~init in
    let d1 = t (0, 0) 3 - t (0, 0) 2 and d2 = t q2 3 - t q2 2 in
    if d1 <> d2 then begin
      let times init = Array.init horizon (fun i -> t init (i + 1)) in
      match linear_fit (times (0, 0)), linear_fit (times q2) with
      | Some (a1, b1), Some (a2, b2) when a1 <> a2 ->
        let key = ((a1, b1), (a2, b2)) in
        let exact =
          key = ((9, 1), (12, 0)) || key = ((12, 0), (9, 1))
        in
        if exact || (diagnostic && not (Hashtbl.mem seen_pairs key)) then begin
          Hashtbl.replace seen_pairs key ();
          incr found;
          let show_op (op : Pipeline.Ooo.op) =
            Printf.sprintf "{k=%d;deps=[%s]}" op.klass
              (String.concat ";" (List.map string_of_int op.deps))
          in
          Printf.printf "%s T1=%dn%+d T2=%dn%+d iter=[%s] %s q2=(%d,%d)\n%!"
            (if exact then "HIT" else "pair")
            a1 b1 a2 b2
            (String.concat " " (List.map show_op iteration))
            show (fst q2) (snd q2)
        end
      | _, _ -> ()
    end
  in
  let mk klass deps = { Pipeline.Ooo.klass; deps } in
  let patterns =
    List.concat_map (fun complex_pos ->
        List.concat_map (fun d1 ->
            List.concat_map (fun d2 ->
                List.map (fun d3 ->
                    List.mapi
                      (fun i d -> mk (if i = complex_pos then 1 else 0) d)
                      [ d1; d2; d3 ])
                  dep_choices)
              dep_choices)
          dep_choices)
      [ 0; 1; 2 ]
  in
  List.iter (fun l00 ->
      List.iter (fun l01 ->
          List.iter (fun l11 ->
              if feasible l00 l01 l11 then begin
              let lat k u =
                match k, u with
                | 0, Pipeline.Ooo.U0 -> Some l00
                | 0, Pipeline.Ooo.U1 -> Some l01
                | 1, Pipeline.Ooo.U0 -> None
                | 1, Pipeline.Ooo.U1 -> Some l11
                | _, _ -> None
              in
              let show = Printf.sprintf "c0:(%d,%d) c1:(-,%d)" l00 l01 l11 in
              List.iter (fun iteration ->
                  List.iter (fun q2 -> test ~lat ~show ~iteration ~q2) inits)
                patterns
              end)
            lat_choices)
        lat_choices)
    lat_choices;
  Printf.printf "distinct bistable pairs: %d\n" !found
